// Package interp executes llvm.Module functions on a byte-addressable memory
// model. Both HLS flows' final IR is run through it and compared against the
// Go reference implementations, standing in for RTL co-simulation.
package interp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/llvm"
)

// ErrFuel is returned when execution exhausts the machine's instruction
// budget — the typed form the differential oracle relies on so a
// miscompiled infinite loop surfaces as a diagnosable failure instead of a
// hang. Detect it with errors.Is.
var ErrFuel = errors.New("interp: out of fuel")

// TrapKind classifies a typed runtime trap.
type TrapKind string

// Trap kinds. Every fault the machine can hit at runtime maps to one of
// these, so the oracle can distinguish "the rewritten IR crashed" from "the
// oracle itself cannot model this IR".
const (
	TrapOOB         TrapKind = "out-of-bounds"
	TrapDivZero     TrapKind = "division-by-zero"
	TrapNilPtr      TrapKind = "nil-pointer"
	TrapUnreachable TrapKind = "unreachable"
	TrapCallDepth   TrapKind = "call-depth"
	TrapUndef       TrapKind = "undefined-value"
)

// Trap is a typed runtime fault: the executed IR performed an operation
// with no defined result (out-of-bounds access, division by zero, reaching
// unreachable). Extract it from an error chain with AsTrap.
type Trap struct {
	Kind   TrapKind
	Detail string
}

// Error implements error.
func (t *Trap) Error() string { return fmt.Sprintf("interp: %s: %s", t.Kind, t.Detail) }

// AsTrap extracts a typed trap from an error chain.
func AsTrap(err error) (*Trap, bool) {
	var t *Trap
	ok := errors.As(err, &t)
	return t, ok
}

func trapf(kind TrapKind, format string, args ...any) error {
	return &Trap{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// Mem is one allocation.
type Mem struct {
	Bytes []byte
}

// NewMem allocates n zeroed bytes.
func NewMem(n int64) *Mem { return &Mem{Bytes: make([]byte, n)} }

// Float64Slice interprets the memory as float64s.
func (m *Mem) Float64Slice() []float64 {
	out := make([]float64, len(m.Bytes)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.Bytes[i*8:]))
	}
	return out
}

// SetFloat64 stores v at element index i.
func (m *Mem) SetFloat64(i int, v float64) {
	binary.LittleEndian.PutUint64(m.Bytes[i*8:], math.Float64bits(v))
}

// Float32Slice interprets the memory as float32s.
func (m *Mem) Float32Slice() []float32 {
	out := make([]float32, len(m.Bytes)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(m.Bytes[i*4:]))
	}
	return out
}

// SetFloat32 stores v at element index i.
func (m *Mem) SetFloat32(i int, v float32) {
	binary.LittleEndian.PutUint32(m.Bytes[i*4:], math.Float32bits(v))
}

// Int32Slice interprets the memory as int32s.
func (m *Mem) Int32Slice() []int32 {
	out := make([]int32, len(m.Bytes)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(m.Bytes[i*4:]))
	}
	return out
}

// SetInt32 stores v at element index i.
func (m *Mem) SetInt32(i int, v int32) {
	binary.LittleEndian.PutUint32(m.Bytes[i*4:], uint32(v))
}

// val is a runtime value.
type val struct {
	i   int64
	f   float64
	mem *Mem
	off int64
}

// Arg is a function-call argument.
type Arg struct{ v val }

// IntArg passes an integer.
func IntArg(x int64) Arg { return Arg{val{i: x}} }

// FloatArg passes a float/double.
func FloatArg(x float64) Arg { return Arg{val{f: x}} }

// PtrArg passes a pointer to offset off within m.
func PtrArg(m *Mem, off int64) Arg { return Arg{val{mem: m, off: off}} }

// Machine executes functions of one module.
type Machine struct {
	Mod *llvm.Module
	// Fuel bounds the executed instruction count (default 500M).
	Fuel int64

	// Observe, when non-nil, is called with every instruction result the
	// machine assigns, including phis (the integer representation value;
	// float results report 0). Property tests hook it to compare dynamic
	// values against static analysis claims.
	Observe func(in *llvm.Instr, v int64)

	// ctx is the Run context, checked at block boundaries.
	ctx context.Context
}

// NewMachine returns a machine for mod.
func NewMachine(mod *llvm.Module) *Machine {
	return &Machine{Mod: mod, Fuel: 500_000_000}
}

// Run executes the named function. The returned value is meaningful only
// for non-void functions (i or f depending on the return type). ctx is
// honored cooperatively at basic-block boundaries — matching the pass
// managers' interrupt contract — so a cancelled or timed-out caller
// reclaims the machine at the next branch rather than after the run.
func (mc *Machine) Run(ctx context.Context, name string, args ...Arg) (int64, float64, error) {
	f := mc.Mod.FindFunc(name)
	if f == nil {
		return 0, 0, fmt.Errorf("interp: function @%s not found", name)
	}
	if len(args) != len(f.Params) {
		return 0, 0, fmt.Errorf("interp: @%s takes %d params, got %d", name, len(f.Params), len(args))
	}
	vals := make([]val, len(args))
	for i, a := range args {
		vals[i] = a.v
	}
	mc.ctx = ctx
	r, err := mc.call(f, vals, 0)
	return r.i, r.f, err
}

func (mc *Machine) call(f *llvm.Function, args []val, depth int) (val, error) {
	if depth > 100 {
		return val{}, trapf(TrapCallDepth, "call depth exceeded in @%s", f.Name)
	}
	env := map[llvm.Value]val{}
	for i, p := range f.Params {
		env[p] = args[i]
	}
	blk := f.Entry()
	var prev *llvm.Block
	for {
		if mc.ctx != nil {
			if err := mc.ctx.Err(); err != nil {
				return val{}, err
			}
		}
		// Phi nodes first, evaluated simultaneously.
		var phiVals []val
		var phis []*llvm.Instr
		for _, in := range blk.Instrs {
			if in.Op != llvm.OpPhi {
				break
			}
			idx := -1
			for i, b := range in.Blocks {
				if b == prev {
					idx = i
					break
				}
			}
			if idx < 0 {
				return val{}, fmt.Errorf("interp: phi in %%%s has no incoming for %%%s",
					blk.Name, blockName(prev))
			}
			v, err := mc.eval(env, in.Args[idx])
			if err != nil {
				return val{}, err
			}
			phis = append(phis, in)
			phiVals = append(phiVals, v)
		}
		for i, p := range phis {
			env[p] = phiVals[i]
			if mc.Observe != nil {
				mc.Observe(p, phiVals[i].i)
			}
		}

		for _, in := range blk.Instrs[len(phis):] {
			mc.Fuel--
			if mc.Fuel < 0 {
				return val{}, ErrFuel
			}
			switch in.Op {
			case llvm.OpBr:
				prev, blk = blk, in.Blocks[0]
			case llvm.OpCondBr:
				c, err := mc.eval(env, in.Args[0])
				if err != nil {
					return val{}, err
				}
				if c.i != 0 {
					prev, blk = blk, in.Blocks[0]
				} else {
					prev, blk = blk, in.Blocks[1]
				}
			case llvm.OpRet:
				if len(in.Args) == 0 {
					return val{}, nil
				}
				return mc.eval(env, in.Args[0])
			case llvm.OpUnreachable:
				return val{}, trapf(TrapUnreachable, "reached unreachable in @%s", f.Name)
			default:
				v, err := mc.exec(env, in, depth)
				if err != nil {
					return val{}, fmt.Errorf("in @%s %%%s: %w", f.Name, in.Name, err)
				}
				if in.HasResult() {
					env[in] = v
					if mc.Observe != nil {
						mc.Observe(in, v.i)
					}
				}
			}
			if in.IsTerminator() {
				break
			}
		}
		if blk == nil {
			return val{}, fmt.Errorf("interp: fell off block")
		}
	}
}

func blockName(b *llvm.Block) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

func (mc *Machine) eval(env map[llvm.Value]val, v llvm.Value) (val, error) {
	switch c := v.(type) {
	case *llvm.ConstInt:
		return val{i: c.Val}, nil
	case *llvm.ConstFloat:
		return val{f: c.Val}, nil
	case *llvm.Undef:
		return val{}, nil
	}
	x, ok := env[v]
	if !ok {
		return val{}, trapf(TrapUndef, "use of undefined value %s", v.Ident())
	}
	return x, nil
}

func (mc *Machine) exec(env map[llvm.Value]val, in *llvm.Instr, depth int) (val, error) {
	ev := func(i int) (val, error) { return mc.eval(env, in.Args[i]) }

	switch in.Op {
	case llvm.OpAdd, llvm.OpSub, llvm.OpMul, llvm.OpSDiv, llvm.OpSRem,
		llvm.OpAnd, llvm.OpOr, llvm.OpXor, llvm.OpShl, llvm.OpLShr, llvm.OpAShr:
		l, err := ev(0)
		if err != nil {
			return val{}, err
		}
		r, err := ev(1)
		if err != nil {
			return val{}, err
		}
		var x int64
		switch in.Op {
		case llvm.OpAdd:
			x = l.i + r.i
		case llvm.OpSub:
			x = l.i - r.i
		case llvm.OpMul:
			x = l.i * r.i
		case llvm.OpSDiv:
			if r.i == 0 {
				return val{}, trapf(TrapDivZero, "sdiv by zero")
			}
			x = l.i / r.i
		case llvm.OpSRem:
			if r.i == 0 {
				return val{}, trapf(TrapDivZero, "srem by zero")
			}
			x = l.i % r.i
		case llvm.OpAnd:
			x = l.i & r.i
		case llvm.OpOr:
			x = l.i | r.i
		case llvm.OpXor:
			x = l.i ^ r.i
		case llvm.OpShl:
			x = l.i << uint(r.i)
		case llvm.OpLShr:
			// Logical shift acts on the type-width unsigned value: clear the
			// sign-extended high bits first, then shift in zeros.
			u := uint64(l.i)
			if t := in.Ty; t != nil && t.IsInt() && t.Bits < 64 {
				u &= (uint64(1) << uint(t.Bits)) - 1
			}
			x = int64(u >> uint(r.i))
		case llvm.OpAShr:
			x = l.i >> uint(r.i)
		}
		return val{i: truncInt(x, in.Ty)}, nil

	case llvm.OpFAdd, llvm.OpFSub, llvm.OpFMul, llvm.OpFDiv:
		l, err := ev(0)
		if err != nil {
			return val{}, err
		}
		r, err := ev(1)
		if err != nil {
			return val{}, err
		}
		var x float64
		switch in.Op {
		case llvm.OpFAdd:
			x = l.f + r.f
		case llvm.OpFSub:
			x = l.f - r.f
		case llvm.OpFMul:
			x = l.f * r.f
		case llvm.OpFDiv:
			x = l.f / r.f
		}
		return val{f: roundFP(x, in.Ty)}, nil

	case llvm.OpFNeg:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{f: -x.f}, nil

	case llvm.OpICmp:
		l, err := ev(0)
		if err != nil {
			return val{}, err
		}
		r, err := ev(1)
		if err != nil {
			return val{}, err
		}
		return val{i: b2i(icmp(in.Pred, l.i, r.i))}, nil

	case llvm.OpFCmp:
		l, err := ev(0)
		if err != nil {
			return val{}, err
		}
		r, err := ev(1)
		if err != nil {
			return val{}, err
		}
		return val{i: b2i(fcmp(in.Pred, l.f, r.f))}, nil

	case llvm.OpSelect:
		c, err := ev(0)
		if err != nil {
			return val{}, err
		}
		if c.i != 0 {
			return ev(1)
		}
		return ev(2)

	case llvm.OpZExt:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		// Zero-extension must clear high bits of the (sign-represented)
		// source value.
		if t := in.Args[0].Type(); t.IsInt() && t.Bits < 64 {
			x.i &= (int64(1) << uint(t.Bits)) - 1
		}
		return val{i: x.i}, nil

	case llvm.OpSExt:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{i: x.i}, nil

	case llvm.OpTrunc:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{i: truncInt(x.i, in.Ty)}, nil

	case llvm.OpSIToFP:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{f: roundFP(float64(x.i), in.Ty)}, nil

	case llvm.OpFPToSI:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{i: int64(x.f)}, nil

	case llvm.OpFPExt:
		return ev(0)

	case llvm.OpFPTrunc:
		x, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return val{f: roundFP(x.f, in.Ty)}, nil

	case llvm.OpBitcast, llvm.OpIntToPtr, llvm.OpPtrToInt:
		return ev(0)

	case llvm.OpAlloca:
		return val{mem: NewMem(in.SrcElem.SizeBytes())}, nil

	case llvm.OpGEP:
		base, err := ev(0)
		if err != nil {
			return val{}, err
		}
		if base.mem == nil {
			return val{}, trapf(TrapNilPtr, "gep on non-pointer value")
		}
		off := base.off
		t := in.SrcElem
		for k := 1; k < len(in.Args); k++ {
			idx, err := ev(k)
			if err != nil {
				return val{}, err
			}
			if k == 1 {
				off += idx.i * t.SizeBytes()
				continue
			}
			switch {
			case t.IsArray():
				t = t.Elem
				off += idx.i * t.SizeBytes()
			case t.IsStruct():
				fi := idx.i
				for j := int64(0); j < fi; j++ {
					off += t.Fields[j].SizeBytes()
				}
				t = t.Fields[fi]
			default:
				return val{}, fmt.Errorf("gep steps through scalar type")
			}
		}
		return val{mem: base.mem, off: off}, nil

	case llvm.OpLoad:
		p, err := ev(0)
		if err != nil {
			return val{}, err
		}
		return loadTyped(p, in.SrcElem)

	case llvm.OpStore:
		v, err := ev(0)
		if err != nil {
			return val{}, err
		}
		p, err := ev(1)
		if err != nil {
			return val{}, err
		}
		return val{}, storeTyped(p, in.Args[0].Type(), v)

	case llvm.OpExtractValue:
		// Aggregates are modeled as pointers here; extractvalue appears only
		// in descriptor manipulation which the flows do not execute.
		return val{}, fmt.Errorf("extractvalue is not executable in this model")

	case llvm.OpCall:
		return mc.execCall(env, in, depth)

	case llvm.OpPhi:
		return val{}, fmt.Errorf("phi executed out of order")
	}
	return val{}, fmt.Errorf("unsupported opcode %s", in.Op)
}

func (mc *Machine) execCall(env map[llvm.Value]val, in *llvm.Instr, depth int) (val, error) {
	args := make([]val, len(in.Args))
	for i := range in.Args {
		v, err := mc.eval(env, in.Args[i])
		if err != nil {
			return val{}, err
		}
		args[i] = v
	}
	switch in.Callee {
	case "llvm.sqrt.f64", "sqrt":
		return val{f: math.Sqrt(args[0].f)}, nil
	case "llvm.sqrt.f32", "sqrtf":
		return val{f: float64(float32(math.Sqrt(args[0].f)))}, nil
	case "llvm.exp.f64", "exp":
		return val{f: math.Exp(args[0].f)}, nil
	case "llvm.exp.f32", "expf":
		return val{f: float64(float32(math.Exp(args[0].f)))}, nil
	case "llvm.fmuladd.f64", "fma":
		return val{f: args[0].f*args[1].f + args[2].f}, nil
	case "llvm.fmuladd.f32", "fmaf":
		return val{f: float64(float32(args[0].f*args[1].f + args[2].f))}, nil
	case "llvm.fabs.f64", "fabs":
		return val{f: math.Abs(args[0].f)}, nil
	case "llvm.fabs.f32", "fabsf":
		return val{f: float64(float32(math.Abs(args[0].f)))}, nil
	case "malloc":
		return val{mem: NewMem(args[0].i)}, nil
	case "free", "llvm.lifetime.start.p0", "llvm.lifetime.end.p0":
		return val{}, nil
	case "llvm.memset.p0.i64", "memset":
		m, off, n := args[0].mem, args[0].off, args[2].i
		if m == nil {
			return val{}, trapf(TrapNilPtr, "%s through nil pointer", in.Callee)
		}
		if off < 0 || off+n > int64(len(m.Bytes)) {
			return val{}, trapf(TrapOOB, "%s out of bounds (off %d, n %d, alloc %d)", in.Callee, off, n, len(m.Bytes))
		}
		for i := int64(0); i < n; i++ {
			m.Bytes[off+i] = byte(args[1].i)
		}
		return val{}, nil
	case "llvm.memcpy.p0.p0.i64", "memcpy":
		dst, src, n := args[0], args[1], args[2].i
		if dst.mem == nil || src.mem == nil {
			return val{}, trapf(TrapNilPtr, "%s through nil pointer", in.Callee)
		}
		if dst.off < 0 || dst.off+n > int64(len(dst.mem.Bytes)) ||
			src.off < 0 || src.off+n > int64(len(src.mem.Bytes)) {
			return val{}, trapf(TrapOOB, "%s out of bounds (n %d)", in.Callee, n)
		}
		copy(dst.mem.Bytes[dst.off:dst.off+n], src.mem.Bytes[src.off:src.off+n])
		return val{}, nil
	}
	callee := mc.Mod.FindFunc(in.Callee)
	if callee == nil || callee.IsDecl {
		return val{}, fmt.Errorf("call to unknown function @%s", in.Callee)
	}
	return mc.call(callee, args, depth+1)
}

func loadTyped(p val, t *llvm.Type) (val, error) {
	if p.mem == nil {
		return val{}, trapf(TrapNilPtr, "load through nil pointer")
	}
	b := p.mem.Bytes
	o := p.off
	if o < 0 || o+t.SizeBytes() > int64(len(b)) {
		return val{}, trapf(TrapOOB, "load out of bounds (off %d, size %d, alloc %d)", o, t.SizeBytes(), len(b))
	}
	switch {
	case t.Kind == llvm.KindFloat:
		return val{f: float64(math.Float32frombits(binary.LittleEndian.Uint32(b[o:])))}, nil
	case t.Kind == llvm.KindDouble:
		return val{f: math.Float64frombits(binary.LittleEndian.Uint64(b[o:]))}, nil
	case t.IsInt():
		switch t.SizeBytes() {
		case 1:
			return val{i: int64(int8(b[o]))}, nil
		case 2:
			return val{i: int64(int16(binary.LittleEndian.Uint16(b[o:])))}, nil
		case 4:
			return val{i: int64(int32(binary.LittleEndian.Uint32(b[o:])))}, nil
		default:
			return val{i: int64(binary.LittleEndian.Uint64(b[o:]))}, nil
		}
	}
	return val{}, fmt.Errorf("load of unsupported type %s", t)
}

func storeTyped(p val, t *llvm.Type, v val) error {
	if p.mem == nil {
		return trapf(TrapNilPtr, "store through nil pointer")
	}
	b := p.mem.Bytes
	o := p.off
	if o < 0 || o+t.SizeBytes() > int64(len(b)) {
		return trapf(TrapOOB, "store out of bounds (off %d, size %d, alloc %d)", o, t.SizeBytes(), len(b))
	}
	switch {
	case t.Kind == llvm.KindFloat:
		binary.LittleEndian.PutUint32(b[o:], math.Float32bits(float32(v.f)))
		return nil
	case t.Kind == llvm.KindDouble:
		binary.LittleEndian.PutUint64(b[o:], math.Float64bits(v.f))
		return nil
	case t.IsInt():
		switch t.SizeBytes() {
		case 1:
			b[o] = byte(v.i)
		case 2:
			binary.LittleEndian.PutUint16(b[o:], uint16(v.i))
		case 4:
			binary.LittleEndian.PutUint32(b[o:], uint32(v.i))
		default:
			binary.LittleEndian.PutUint64(b[o:], uint64(v.i))
		}
		return nil
	case t.IsPtr():
		// Pointers are not persisted to memory in this model.
		return fmt.Errorf("storing pointers to memory is unsupported")
	}
	return fmt.Errorf("store of unsupported type %s", t)
}

func truncInt(x int64, t *llvm.Type) int64 {
	if t == nil || !t.IsInt() || t.Bits >= 64 {
		return x
	}
	shift := uint(64 - t.Bits)
	return x << shift >> shift
}

func roundFP(x float64, t *llvm.Type) float64 {
	if t != nil && t.Kind == llvm.KindFloat {
		return float64(float32(x))
	}
	return x
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func icmp(pred string, l, r int64) bool {
	switch pred {
	case "eq":
		return l == r
	case "ne":
		return l != r
	case "slt":
		return l < r
	case "sle":
		return l <= r
	case "sgt":
		return l > r
	case "sge":
		return l >= r
	case "ult":
		return uint64(l) < uint64(r)
	case "ule":
		return uint64(l) <= uint64(r)
	case "ugt":
		return uint64(l) > uint64(r)
	case "uge":
		return uint64(l) >= uint64(r)
	}
	return false
}

func fcmp(pred string, l, r float64) bool {
	switch pred {
	case "oeq":
		return l == r
	case "one":
		return l != r
	case "olt":
		return l < r
	case "ole":
		return l <= r
	case "ogt":
		return l > r
	case "oge":
		return l >= r
	case "ord":
		return !math.IsNaN(l) && !math.IsNaN(r)
	case "uno":
		return math.IsNaN(l) || math.IsNaN(r)
	}
	return false
}

package interp

import "math"

// This file is the oracle's float-comparison policy: distances are measured
// in units in the last place over the ordered bit representation, never in
// ad-hoc epsilons. ±0 compare equal, two NaNs compare equal (both runs
// produced "no value" the same way), and a NaN never equals a number.

// ULPDiff64 returns the distance between two float64s in units in the last
// place: 0 for bitwise-equal values and for +0/-0, 1 for adjacent
// representable values (including across the denormal range), and MaxUint64
// when exactly one side is NaN.
func ULPDiff64(a, b float64) uint64 {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	if an || bn {
		if an && bn {
			return 0
		}
		return math.MaxUint64
	}
	ai, bi := orderedBits64(a), orderedBits64(b)
	if ai > bi {
		ai, bi = bi, ai
	}
	return uint64(bi - ai)
}

// ULPDiff32 is ULPDiff64 over the float32 lattice, where the oracle
// compares f32 kernel memory (MaxUint32-scale distance for a one-sided
// NaN).
func ULPDiff32(a, b float32) uint64 {
	a64, b64 := float64(a), float64(b)
	an, bn := math.IsNaN(a64), math.IsNaN(b64)
	if an || bn {
		if an && bn {
			return 0
		}
		return math.MaxUint64
	}
	ai, bi := orderedBits32(a), orderedBits32(b)
	if ai > bi {
		ai, bi = bi, ai
	}
	return uint64(bi - ai)
}

// ULPEqual reports whether two float64s are within maxULP units in the last
// place of each other. maxULP 0 demands bitwise equality up to the sign of
// zero; NaN equals only NaN.
func ULPEqual(a, b float64, maxULP uint64) bool { return ULPDiff64(a, b) <= maxULP }

// ULPEqual32 is ULPEqual over float32s.
func ULPEqual32(a, b float32, maxULP uint64) bool { return ULPDiff32(a, b) <= maxULP }

// orderedBits64 maps the float64 bit pattern onto a monotone integer line:
// negative floats (sign bit set) are reflected below zero so that integer
// distance equals ULP distance everywhere, including across ±0 and through
// the denormals.
func orderedBits64(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

func orderedBits32(f float32) int32 {
	b := int32(math.Float32bits(f))
	if b < 0 {
		b = math.MinInt32 - b
	}
	return b
}

package interp

import (
	"math"
	"testing"
)

func TestULPEqualExact(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if !ULPEqual(v, v, 0) {
			t.Errorf("ULPEqual(%g, %g, 0) = false", v, v)
		}
	}
}

func TestULPSignedZero(t *testing.T) {
	if d := ULPDiff64(0.0, math.Copysign(0, -1)); d != 0 {
		t.Errorf("ULPDiff64(+0, -0) = %d, want 0", d)
	}
	if d := ULPDiff32(0, float32(math.Copysign(0, -1))); d != 0 {
		t.Errorf("ULPDiff32(+0, -0) = %d, want 0", d)
	}
}

func TestULPNaN(t *testing.T) {
	nan := math.NaN()
	if !ULPEqual(nan, nan, 0) {
		t.Error("NaN should ULP-equal NaN (both runs trapped to no-value identically)")
	}
	if ULPEqual(nan, 1.0, math.MaxUint64-1) {
		t.Error("NaN must never equal a number")
	}
	if ULPEqual32(float32(math.NaN()), 1.0, math.MaxUint64-1) {
		t.Error("NaN must never equal a number (f32)")
	}
}

func TestULPAdjacent(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{1.0, math.Nextafter(1.0, 2)},
		{-1.0, math.Nextafter(-1.0, 0)},
		// Across zero: smallest positive denormal vs +0.
		{0, math.SmallestNonzeroFloat64},
		// Within the denormal range.
		{math.SmallestNonzeroFloat64, 2 * math.SmallestNonzeroFloat64},
		// Across the denormal/normal boundary.
		{math.Float64frombits(0x000fffffffffffff), math.Float64frombits(0x0010000000000000)},
		// Largest finite to +Inf is one representable step.
		{math.MaxFloat64, math.Inf(1)},
	}
	for _, c := range cases {
		if d := ULPDiff64(c.a, c.b); d != 1 {
			t.Errorf("ULPDiff64(%g, %g) = %d, want 1", c.a, c.b, d)
		}
	}
	// The straddle case: smallest negative to smallest positive denormal is
	// two steps (through zero), where naive bit subtraction would blow up.
	if d := ULPDiff64(-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64); d != 2 {
		t.Errorf("ULPDiff64(-min, +min) = %d, want 2", d)
	}
}

func TestULPAdjacent32(t *testing.T) {
	one := float32(1.0)
	next := math.Float32frombits(math.Float32bits(one) + 1)
	if d := ULPDiff32(one, next); d != 1 {
		t.Errorf("ULPDiff32(1, next) = %d, want 1", d)
	}
	denorm := math.Float32frombits(1) // smallest positive f32 denormal
	if d := ULPDiff32(0, denorm); d != 1 {
		t.Errorf("ULPDiff32(0, denorm) = %d, want 1", d)
	}
	if d := ULPDiff32(-denorm, denorm); d != 2 {
		t.Errorf("ULPDiff32(-denorm, denorm) = %d, want 2", d)
	}
	if !ULPEqual32(float32(math.Copysign(0, -1)), 0, 0) {
		t.Error("ULPEqual32(-0, +0, 0) = false")
	}
}

func TestULPExtremes(t *testing.T) {
	// Full-range distances must not overflow into small values.
	if d := ULPDiff64(-math.MaxFloat64, math.MaxFloat64); d < math.MaxUint64/4 {
		t.Errorf("ULPDiff64(-max, max) suspiciously small: %d", d)
	}
	if ULPEqual(-math.MaxFloat64, math.MaxFloat64, 1000) {
		t.Error("opposite extremes must not be ULP-equal")
	}
}

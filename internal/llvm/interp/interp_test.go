package interp

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/llvm"
)

func TestMemTypedViews(t *testing.T) {
	m := NewMem(16)
	m.SetFloat64(0, 3.25)
	m.SetFloat64(1, -1.5)
	f64 := m.Float64Slice()
	if f64[0] != 3.25 || f64[1] != -1.5 {
		t.Errorf("f64 view = %v", f64)
	}
	m2 := NewMem(8)
	m2.SetFloat32(0, 1.25)
	m2.SetFloat32(1, -2.5)
	f32 := m2.Float32Slice()
	if f32[0] != 1.25 || f32[1] != -2.5 {
		t.Errorf("f32 view = %v", f32)
	}
	m3 := NewMem(8)
	m3.SetInt32(0, -9)
	m3.SetInt32(1, 1<<30)
	i32 := m3.Int32Slice()
	if i32[0] != -9 || i32[1] != 1<<30 {
		t.Errorf("i32 view = %v", i32)
	}
}

func TestMemRoundTripQuick(t *testing.T) {
	f := func(v float64, idx uint8) bool {
		if math.IsNaN(v) {
			return true
		}
		i := int(idx % 8)
		m := NewMem(64)
		m.SetFloat64(i, v)
		return m.Float64Slice()[i] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildScalarFn builds: i32 @sel(i32 %a, i32 %b) { return a<b ? a*2 : b-1 }.
func buildScalarFn() *llvm.Module {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("sel", llvm.I32(),
		&llvm.Param{Name: "a", Ty: llvm.I32()}, &llvm.Param{Name: "b", Ty: llvm.I32()})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	c := b.ICmp("slt", f.Params[0], f.Params[1])
	x := b.Mul(f.Params[0], llvm.CI(llvm.I32(), 2))
	y := b.Sub(f.Params[1], llvm.CI(llvm.I32(), 1))
	r := b.Select(c, x, y)
	b.Ret(r)
	return m
}

func TestScalarReturn(t *testing.T) {
	mc := NewMachine(buildScalarFn())
	i, _, err := mc.Run(context.Background(), "sel", IntArg(3), IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	if i != 6 {
		t.Errorf("sel(3,10) = %d, want 6", i)
	}
	i, _, err = mc.Run(context.Background(), "sel", IntArg(10), IntArg(3))
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("sel(10,3) = %d, want 2", i)
	}
}

func TestScalarSelectQuick(t *testing.T) {
	mc := NewMachine(buildScalarFn())
	f := func(a, b int16) bool {
		i, _, err := mc.Run(context.Background(), "sel", IntArg(int64(a)), IntArg(int64(b)))
		if err != nil {
			return false
		}
		want := int64(b) - 1
		if int64(a) < int64(b) {
			want = int64(a) * 2
		}
		// i32 truncation semantics.
		return i == int64(int32(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsChecking(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("oob", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.ArrayOf(4, llvm.FloatT()))})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	g := b.GEP(llvm.ArrayOf(4, llvm.FloatT()), f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 9))
	v := b.Load(llvm.FloatT(), g)
	_ = v
	b.Ret(nil)
	mc := NewMachine(m)
	mem := NewMem(16) // only 4 floats
	if _, _, err := mc.Run(context.Background(), "oob", PtrArg(mem, 0)); err == nil {
		t.Error("out-of-bounds load must error")
	}
}

func TestFuelLimit(t *testing.T) {
	// Infinite loop must hit the fuel limit, not hang.
	m := llvm.NewModule("t")
	f := llvm.NewFunction("spin", llvm.Void())
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	loop := f.AddBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	x := b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 1))
	_ = x
	b.Br(loop)
	mc := NewMachine(m)
	mc.Fuel = 10000
	if _, _, err := mc.Run(context.Background(), "spin"); err == nil {
		t.Error("infinite loop must exhaust fuel")
	}
}

func TestIntrinsicCalls(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("mathy", llvm.DoubleT(), &llvm.Param{Name: "x", Ty: llvm.DoubleT()})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	s := b.Call("llvm.sqrt.f64", llvm.DoubleT(), f.Params[0])
	e := b.Call("exp", llvm.DoubleT(), llvm.CF(llvm.DoubleT(), 0))
	r := b.FAdd(s, e)
	b.Ret(r)
	mc := NewMachine(m)
	_, got, err := mc.Run(context.Background(), "mathy", FloatArg(16))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 { // sqrt(16) + exp(0) = 4 + 1
		t.Errorf("mathy(16) = %g, want 5", got)
	}
}

func TestMemcpyMemset(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("blk", llvm.Void(),
		&llvm.Param{Name: "dst", Ty: llvm.Ptr(llvm.I8())},
		&llvm.Param{Name: "src", Ty: llvm.Ptr(llvm.I8())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Call("llvm.memset.p0.i64", llvm.Void(), f.Params[1], llvm.CI(llvm.I8(), 7), llvm.CI(llvm.I64(), 4))
	b.Call("llvm.memcpy.p0.p0.i64", llvm.Void(), f.Params[0], f.Params[1], llvm.CI(llvm.I64(), 4))
	b.Ret(nil)
	dst, src := NewMem(8), NewMem(8)
	mc := NewMachine(m)
	if _, _, err := mc.Run(context.Background(), "blk", PtrArg(dst, 0), PtrArg(src, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if dst.Bytes[i] != 7 {
			t.Errorf("dst[%d] = %d", i, dst.Bytes[i])
		}
	}
	if dst.Bytes[4] != 0 {
		t.Error("memcpy copied too much")
	}
}

func TestUserFunctionCall(t *testing.T) {
	m := llvm.NewModule("t")
	sq := llvm.NewFunction("square", llvm.I32(), &llvm.Param{Name: "x", Ty: llvm.I32()})
	m.AddFunc(sq)
	e1 := sq.AddBlock("entry")
	b := llvm.NewBuilder(sq)
	b.SetBlock(e1)
	b.Ret(b.Mul(sq.Params[0], sq.Params[0]))

	main := llvm.NewFunction("main", llvm.I32())
	m.AddFunc(main)
	e2 := main.AddBlock("entry")
	b2 := llvm.NewBuilder(main)
	b2.SetBlock(e2)
	r := b2.Call("square", llvm.I32(), llvm.CI(llvm.I32(), 9))
	b2.Ret(r)

	mc := NewMachine(m)
	i, _, err := mc.Run(context.Background(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if i != 81 {
		t.Errorf("main() = %d, want 81", i)
	}
}

func TestUnknownCallErrors(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("bad", llvm.Void())
	m.AddFunc(f)
	e := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(e)
	b.Call("mystery", llvm.Void())
	b.Ret(nil)
	mc := NewMachine(m)
	if _, _, err := mc.Run(context.Background(), "bad"); err == nil {
		t.Error("unknown callee must error")
	}
}

func TestF32RoundingPerOp(t *testing.T) {
	// fadd float must round each op to single precision.
	m := llvm.NewModule("t")
	f := llvm.NewFunction("acc", llvm.FloatT())
	m.AddFunc(f)
	e := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(e)
	big := llvm.CF(llvm.FloatT(), 1e8)
	small := llvm.CF(llvm.FloatT(), 1)
	s := b.FAdd(big, small) // 1e8 + 1 rounds to 1e8 in f32
	b.Ret(s)
	mc := NewMachine(m)
	_, got, err := mc.Run(context.Background(), "acc")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(float32(1e8) + float32(1))
	if got != want {
		t.Errorf("f32 accumulation = %g, want %g", got, want)
	}
	if got == 1e8+1 {
		t.Error("interpreter is using double precision for float ops")
	}
}

func TestTypedTraps(t *testing.T) {
	// Division by zero.
	m := llvm.NewModule("t")
	f := llvm.NewFunction("div", llvm.I32(), &llvm.Param{Name: "d", Ty: llvm.I32()})
	m.AddFunc(f)
	e := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(e)
	b.Ret(b.SDiv(llvm.CI(llvm.I32(), 1), f.Params[0]))
	mc := NewMachine(m)
	_, _, err := mc.Run(context.Background(), "div", IntArg(0))
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapDivZero {
		t.Fatalf("div-by-zero trap = %v, want TrapDivZero", err)
	}

	// Out-of-bounds load carries TrapOOB.
	m2 := llvm.NewModule("t")
	f2 := llvm.NewFunction("oob", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.ArrayOf(4, llvm.FloatT()))})
	m2.AddFunc(f2)
	e2 := f2.AddBlock("entry")
	b2 := llvm.NewBuilder(f2)
	b2.SetBlock(e2)
	g := b2.GEP(llvm.ArrayOf(4, llvm.FloatT()), f2.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 9))
	b2.Load(llvm.FloatT(), g)
	b2.Ret(nil)
	mc2 := NewMachine(m2)
	_, _, err = mc2.Run(context.Background(), "oob", PtrArg(NewMem(16), 0))
	tr, ok = AsTrap(err)
	if !ok || tr.Kind != TrapOOB {
		t.Fatalf("oob trap = %v, want TrapOOB", err)
	}
}

func TestFuelTyped(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("spin", llvm.Void())
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	loop := f.AddBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 1))
	b.Br(loop)
	mc := NewMachine(m)
	mc.Fuel = 1000
	_, _, err := mc.Run(context.Background(), "spin")
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("fuel exhaustion = %v, want ErrFuel", err)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	// A pre-canceled context must stop execution at the first block
	// boundary, before fuel runs out.
	m := llvm.NewModule("t")
	f := llvm.NewFunction("spin", llvm.Void())
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	loop := f.AddBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 1))
	b.Br(loop)
	mc := NewMachine(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := mc.Run(ctx, "spin")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run = %v, want context.Canceled", err)
	}
}

func TestFabsIntrinsic(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("ab", llvm.DoubleT(), &llvm.Param{Name: "x", Ty: llvm.DoubleT()})
	m.AddFunc(f)
	e := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(e)
	b.Ret(b.Call("llvm.fabs.f64", llvm.DoubleT(), f.Params[0]))
	mc := NewMachine(m)
	_, got, err := mc.Run(context.Background(), "ab", FloatArg(-2.5))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("fabs(-2.5) = %g, want 2.5", got)
	}
}

package oracle

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/polybench"
	"repro/internal/translate"
)

func gemmModule(t *testing.T) *mlir.Module {
	t.Helper()
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	return k.Build(s)
}

func TestHarnessSelfConsistent(t *testing.T) {
	// The pristine module must pass its own oracle at every layer the
	// harness can execute it.
	m := gemmModule(t)
	h, err := New(m, "gemm")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckMLIR(m); err != nil {
		t.Errorf("pristine structured module diverges from itself: %v", err)
	}
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckMLIR(m); err != nil {
		t.Errorf("scf form diverges: %v", err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckMLIR(m); err != nil {
		t.Errorf("cf form diverges: %v", err)
	}
	lm, err := translate.Translate(m, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckLLVM(lm); err != nil {
		t.Errorf("descriptor-ABI LLVM form diverges: %v", err)
	}
}

func TestDivergenceDetected(t *testing.T) {
	m := gemmModule(t)
	h, err := New(m, "gemm")
	if err != nil {
		t.Fatal(err)
	}
	// Flip the kernel's multiply-accumulate into a multiply-subtract.
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpAddF {
			o.Name = mlir.OpSubF
			return false
		}
		return true
	})
	err = h.CheckMLIR(m)
	if err == nil {
		t.Fatal("corrupted kernel passed the oracle")
	}
	var d *Divergence
	if !errors.As(err, &d) {
		t.Fatalf("expected a *Divergence, got %v", err)
	}
	if !IsMiscompile(err) {
		t.Error("a divergence must classify as a miscompile")
	}
}

func TestFuelClassifiesAsMiscompile(t *testing.T) {
	m := gemmModule(t)
	h, err := New(m, "gemm")
	if err != nil {
		t.Fatal(err)
	}
	h.Fuel = 10
	err = h.CheckMLIR(gemmModule(t))
	if err == nil {
		t.Fatal("fuel budget of 10 should not complete gemm")
	}
	if !IsMiscompile(err) {
		t.Errorf("fuel exhaustion must classify as miscompile, got %v", err)
	}
}

func TestOracleLimitationIsNotMiscompile(t *testing.T) {
	if IsMiscompile(errors.New("interp: unsupported op foo.bar")) {
		t.Error("an unexecutable op is an oracle limitation, not a miscompile")
	}
	if IsMiscompile(errors.New("oracle: @gemm has 4 params, matching neither the direct ABI (3) nor the descriptor ABI (21)")) {
		t.Error("an unrecognized ABI is an oracle limitation, not a miscompile")
	}
}

func TestTrapClassifiesAsMiscompile(t *testing.T) {
	var trapErr error = &interp.Trap{Kind: interp.TrapOOB, Detail: "load past the end"}
	if !IsMiscompile(trapErr) {
		t.Error("an interpreter trap must classify as a miscompile")
	}
	if !IsMiscompile(interp.ErrFuel) {
		t.Error("LLVM-side fuel exhaustion must classify as a miscompile")
	}
}

func TestAllKernelsHarnessable(t *testing.T) {
	// Every polybench kernel must admit a reference execution — the
	// precondition for VerifySemantics covering the whole suite.
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			m := k.Build(s)
			h, err := New(m, k.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.CheckMLIR(m); err != nil {
				t.Errorf("pristine %s diverges from itself: %v", k.Name, err)
			}
		})
	}
}

// TestNewFromLLVM covers the hls-adaptor CLI path: no MLIR in sight — the
// reference is the pre-adapt descriptor-ABI LLVM module, the shapes come
// off the adapted signature, and the adapted module must match the
// reference bit-for-bit (within ULP tolerance).
func TestNewFromLLVM(t *testing.T) {
	buildLL := func() *llvm.Module {
		m := gemmModule(t)
		if err := lower.AffineToSCF(m); err != nil {
			t.Fatal(err)
		}
		if err := lower.SCFToCF(m); err != nil {
			t.Fatal(err)
		}
		lm, err := translate.Translate(m, translate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return lm
	}
	pristine := buildLL()
	adapted := buildLL()
	if _, err := core.Adapt(adapted, core.Options{TopFunc: "gemm"}); err != nil {
		t.Fatal(err)
	}
	shapes, err := ShapesOf(adapted.FindFunc("gemm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 3 {
		t.Fatalf("gemm has %d ports, want 3", len(shapes))
	}
	h, err := NewFromLLVM(pristine, "gemm", shapes)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckLLVM(adapted); err != nil {
		t.Errorf("adapted module diverges from its own input: %v", err)
	}
	// And the harness still catches corruption of the adapted module.
	for _, f := range adapted.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == llvm.OpFAdd {
					in.Op = llvm.OpFSub
					goto corrupted
				}
			}
		}
	}
corrupted:
	err = h.CheckLLVM(adapted)
	if err == nil {
		t.Fatal("corrupted adapted module passed the oracle")
	}
	if !IsMiscompile(err) {
		t.Errorf("corruption must classify as miscompile, got %v", err)
	}
}

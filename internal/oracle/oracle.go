// Package oracle is the differential-execution harness behind
// flow.Options.VerifySemantics: it captures a reference execution of the
// pristine MLIR kernel once, then re-executes the evolving IR after every
// pipeline unit — MLIR form through the MLIR stages, LLVM form after
// translation — on identically-initialized buffers and compares the output
// memory state. Integers must match bitwise; floats must agree within a
// ULP tolerance (interp.ULPEqual — never an ad-hoc epsilon). The first
// divergence names the unit that introduced it, the semantic twin of
// flow.Bisect: where bisection localizes the first unit that crashes or
// breaks a structural invariant, the oracle localizes the first unit that
// computes the wrong answer while the IR still verifies and schedules.
package oracle

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/translate"
)

// DefaultMaxULP is the oracle's float tolerance: transformed pipelines may
// legitimately reassociate a constant fold or two, but anything beyond a
// few units in the last place at the element width is a wrong answer.
const DefaultMaxULP = 4

// Divergence is the first element-wise mismatch between a staged execution
// and the reference run.
type Divergence struct {
	// Arg and Index locate the mismatch: argument position of the top
	// function and row-major element offset within it.
	Arg   int
	Index int
	// Got is the staged pipeline's value, Want the reference value.
	Got, Want float64
	// ULP is the distance at the element width (0 for integer elements,
	// which must match exactly).
	ULP uint64
	// Int marks an integer-element mismatch.
	Int bool
}

// Error implements error.
func (d *Divergence) Error() string {
	if d.Int {
		return fmt.Sprintf("semantic divergence: arg %d element %d: got %d, want %d",
			d.Arg, d.Index, int64(d.Got), int64(d.Want))
	}
	return fmt.Sprintf("semantic divergence: arg %d element %d: got %v, want %v (%d ULP apart)",
		d.Arg, d.Index, d.Got, d.Want, d.ULP)
}

// IsMiscompile classifies an oracle check error: a divergence, a trap
// (out-of-bounds, division by zero), or fuel exhaustion all mean the
// pipeline changed what the program computes — a miscompile. Anything else
// (an op the oracle cannot execute, an ABI it does not recognize) is an
// oracle limitation and must surface as an ordinary error, never as a
// false miscompile verdict.
func IsMiscompile(err error) bool {
	var d *Divergence
	if errors.As(err, &d) {
		return true
	}
	if errors.Is(err, interp.ErrFuel) || errors.Is(err, mlir.ErrFuel) {
		return true
	}
	if _, ok := interp.AsTrap(err); ok {
		return true
	}
	// The MLIR interpreter reports runtime faults as plain errors.
	msg := err.Error()
	for _, s := range []string{"out of bounds", "division by zero", "remainder by zero", "non-positive scf.for step"} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// Harness holds one kernel's reference execution. It is built from the
// pristine module before any pass runs and is immutable afterwards, so a
// single harness checks every stage of a flow — and both flows of a
// differential pair, since they share the pre-pipeline semantics.
type Harness struct {
	// Top is the kernel function under test.
	Top string
	// MaxULP is the float tolerance (DefaultMaxULP when zero-initialized
	// via New).
	MaxULP uint64
	// Fuel bounds each staged execution.
	Fuel int64

	shapes []*mlir.Type // memref type of each top-function argument
	refF   [][]float64  // reference output, float-element arguments
	refI   [][]int64    // reference output, integer-element arguments
}

// New captures the reference execution of top in m. The module must be in
// its pre-pipeline form; callers own making the call before any pass
// mutates it.
func New(m *mlir.Module, top string) (*Harness, error) {
	f := m.FindFunc(top)
	if f == nil {
		return nil, fmt.Errorf("oracle: function %q not found", top)
	}
	h := &Harness{Top: top, MaxULP: DefaultMaxULP, Fuel: mlir.DefaultFuel}
	for i, a := range mlir.FuncBody(f).Args {
		t := a.Type()
		if !t.IsMemRef() || !t.HasStaticShape() {
			return nil, fmt.Errorf("oracle: argument %d of %q is not a static memref", i, top)
		}
		h.shapes = append(h.shapes, t)
	}
	bufs := h.freshMLIRBufs()
	if err := m.InterpretWithFuel(top, h.Fuel, bufs...); err != nil {
		return nil, fmt.Errorf("oracle: reference execution: %w", err)
	}
	h.refF = make([][]float64, len(bufs))
	h.refI = make([][]int64, len(bufs))
	for i, b := range bufs {
		h.refF[i] = b.F
		h.refI[i] = b.I
	}
	return h, nil
}

// fill writes the deterministic input pattern (the polybench initializer)
// into element i of argument ai at the argument's element precision.
func fillFloat(ai, i int, ty *mlir.Type) float64 {
	v := float64((i*7+ai*13)%17) / 17
	if ty.Width == 32 {
		return float64(float32(v))
	}
	return v
}

func fillInt(ai, i int) int64 { return int64((i*7 + ai*13) % 17) }

// freshMLIRBufs allocates and deterministically fills one MemBuf per
// argument.
func (h *Harness) freshMLIRBufs() []*mlir.MemBuf {
	bufs := make([]*mlir.MemBuf, len(h.shapes))
	for ai, t := range h.shapes {
		b := mlir.NewMemBuf(t)
		for i := range b.F {
			b.F[i] = fillFloat(ai, i, t.Elem)
		}
		for i := range b.I {
			b.I[i] = fillInt(ai, i)
		}
		bufs[ai] = b
	}
	return bufs
}

// CheckMLIR executes the staged MLIR module (structured or cf-lowered) on
// fresh inputs and compares the resulting memory against the reference.
func (h *Harness) CheckMLIR(m *mlir.Module) error {
	bufs := h.freshMLIRBufs()
	if err := m.InterpretWithFuel(h.Top, h.Fuel, bufs...); err != nil {
		return err
	}
	for ai, b := range bufs {
		elem := h.shapes[ai].Elem
		for i := range b.F {
			if err := h.compareFloat(ai, i, b.F[i], elem); err != nil {
				return err
			}
		}
		for i := range b.I {
			if b.I[i] != h.refI[ai][i] {
				return &Divergence{Arg: ai, Index: i, Got: float64(b.I[i]), Want: float64(h.refI[ai][i]), Int: true}
			}
		}
	}
	return nil
}

// CheckLLVM executes the staged LLVM module on fresh memory and compares
// the resulting state against the reference. It recognizes both calling
// conventions the flows produce: the post-translate expanded memref
// descriptor ABI (base/aligned/offset/sizes/strides per argument) and the
// post-adaptor / C-frontend one-pointer-per-array-port ABI.
func (h *Harness) CheckLLVM(lm *llvm.Module) error {
	f := lm.FindFunc(h.Top)
	if f == nil {
		return fmt.Errorf("oracle: function @%s not found in LLVM module", h.Top)
	}
	mems := h.freshMems()
	args, err := h.llvmArgs(f, mems)
	if err != nil {
		return err
	}
	mc := interp.NewMachine(lm)
	if h.Fuel > 0 {
		mc.Fuel = h.Fuel
	}
	if _, _, err := mc.Run(context.Background(), h.Top, args...); err != nil {
		return err
	}
	for ai, mem := range mems {
		if err := h.compareMem(ai, mem); err != nil {
			return err
		}
	}
	return nil
}

// elemBytes is the in-memory size of one element of the argument type.
func elemBytes(t *mlir.Type) int64 {
	if t.Elem.Width == 32 {
		return 4
	}
	return 8
}

// freshMems allocates and fills one flat allocation per argument.
func (h *Harness) freshMems() []*interp.Mem {
	mems := make([]*interp.Mem, len(h.shapes))
	for ai, t := range h.shapes {
		n := t.NumElements()
		eb := elemBytes(t)
		mem := interp.NewMem(n * eb)
		for i := int64(0); i < n; i++ {
			switch {
			case t.Elem.IsFloat() && eb == 4:
				mem.SetFloat32(int(i), float32(fillFloat(ai, int(i), t.Elem)))
			case t.Elem.IsFloat():
				mem.SetFloat64(int(i), fillFloat(ai, int(i), t.Elem))
			case eb == 4:
				mem.SetInt32(int(i), int32(fillInt(ai, int(i))))
			default:
				binary.LittleEndian.PutUint64(mem.Bytes[i*8:], uint64(fillInt(ai, int(i))))
			}
		}
		mems[ai] = mem
	}
	return mems
}

// llvmArgs synthesizes the call arguments for f over mems, dispatching on
// the parameter count to pick the ABI.
func (h *Harness) llvmArgs(f *llvm.Function, mems []*interp.Mem) ([]interp.Arg, error) {
	descParams := 0
	for _, t := range h.shapes {
		descParams += translate.DescriptorParams(len(t.Shape))
	}
	switch len(f.Params) {
	case len(h.shapes):
		args := make([]interp.Arg, len(mems))
		for i, m := range mems {
			args[i] = interp.PtrArg(m, 0)
		}
		return args, nil
	case descParams:
		var args []interp.Arg
		for ai, t := range h.shapes {
			m := mems[ai]
			args = append(args, interp.PtrArg(m, 0), interp.PtrArg(m, 0), interp.IntArg(0))
			for _, d := range t.Shape {
				args = append(args, interp.IntArg(d))
			}
			stride := int64(1)
			strides := make([]int64, len(t.Shape))
			for d := len(t.Shape) - 1; d >= 0; d-- {
				strides[d] = stride
				stride *= t.Shape[d]
			}
			for _, s := range strides {
				args = append(args, interp.IntArg(s))
			}
		}
		return args, nil
	}
	// Shapes recovered from an adapted signature (ShapesOf) are flattened,
	// so their ranks cannot reconstruct the descriptor layout. The pattern
	// can: descriptor ports are a (base, aligned) pointer pair followed by
	// offset/size/stride scalars, and the generated code bakes static
	// strides in, so the scalar values are immaterial — only the slot count
	// matters.
	if args, ok := h.descriptorArgsByPattern(f, mems); ok {
		return args, nil
	}
	return nil, fmt.Errorf("oracle: @%s has %d params, matching neither the direct ABI (%d) nor the descriptor ABI (%d)",
		h.Top, len(f.Params), len(h.shapes), descParams)
}

// descriptorArgsByPattern synthesizes descriptor-ABI call arguments from
// the parameter type pattern alone. It reports false when the pattern does
// not spell exactly one (ptr, ptr) pair per harness argument.
func (h *Harness) descriptorArgsByPattern(f *llvm.Function, mems []*interp.Mem) ([]interp.Arg, bool) {
	args := make([]interp.Arg, 0, len(f.Params))
	port := 0
	expectAligned := false
	for _, p := range f.Params {
		switch {
		case p.Ty.IsPtr() && expectAligned:
			args = append(args, interp.PtrArg(mems[port], 0))
			port++
			expectAligned = false
		case p.Ty.IsPtr():
			if port >= len(mems) {
				return nil, false
			}
			args = append(args, interp.PtrArg(mems[port], 0))
			expectAligned = true
		case p.Ty.IsInt() && !expectAligned:
			args = append(args, interp.IntArg(0))
		default:
			return nil, false
		}
	}
	return args, port == len(mems) && !expectAligned
}

// compareMem checks one output allocation against the reference argument.
func (h *Harness) compareMem(ai int, mem *interp.Mem) error {
	t := h.shapes[ai]
	n := int(t.NumElements())
	switch {
	case t.Elem.IsFloat() && t.Elem.Width == 32:
		got := mem.Float32Slice()
		for i := 0; i < n; i++ {
			want := float32(h.refF[ai][i])
			if !interp.ULPEqual32(got[i], want, h.MaxULP) {
				return &Divergence{Arg: ai, Index: i, Got: float64(got[i]), Want: float64(want),
					ULP: interp.ULPDiff32(got[i], want)}
			}
		}
	case t.Elem.IsFloat():
		got := mem.Float64Slice()
		for i := 0; i < n; i++ {
			want := h.refF[ai][i]
			if !interp.ULPEqual(got[i], want, h.MaxULP) {
				return &Divergence{Arg: ai, Index: i, Got: got[i], Want: want,
					ULP: interp.ULPDiff64(got[i], want)}
			}
		}
	case t.Elem.Width == 32:
		got := mem.Int32Slice()
		for i := 0; i < n; i++ {
			if int64(got[i]) != h.refI[ai][i] {
				return &Divergence{Arg: ai, Index: i, Got: float64(got[i]), Want: float64(h.refI[ai][i]), Int: true}
			}
		}
	default:
		for i := 0; i < n; i++ {
			got := int64(binary.LittleEndian.Uint64(mem.Bytes[i*8:]))
			if got != h.refI[ai][i] {
				return &Divergence{Arg: ai, Index: i, Got: float64(got), Want: float64(h.refI[ai][i]), Int: true}
			}
		}
	}
	return nil
}

// compareFloat checks a staged MLIR float element at the element width.
func (h *Harness) compareFloat(ai, i int, got float64, elem *mlir.Type) error {
	want := h.refF[ai][i]
	if elem.Width == 32 {
		g, w := float32(got), float32(want)
		if !interp.ULPEqual32(g, w, h.MaxULP) {
			return &Divergence{Arg: ai, Index: i, Got: got, Want: want, ULP: interp.ULPDiff32(g, w)}
		}
		return nil
	}
	if !interp.ULPEqual(got, want, h.MaxULP) {
		return &Divergence{Arg: ai, Index: i, Got: got, Want: want, ULP: interp.ULPDiff64(got, want)}
	}
	return nil
}

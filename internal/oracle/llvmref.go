package oracle

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
)

// ShapesOf recovers each port's memref shape from a direct-ABI LLVM
// signature — one pointer-to-nested-static-arrays parameter per port, the
// form the adaptor and the C frontend produce. It is how `hls-adaptor
// -verify-semantics` builds a harness with no MLIR module in sight: the
// pre-adapt descriptor ABI carries sizes only as runtime arguments, but
// the adapted signature spells them out in the types.
func ShapesOf(f *llvm.Function) ([]*mlir.Type, error) {
	shapes := make([]*mlir.Type, 0, len(f.Params))
	for i, p := range f.Params {
		t := p.Ty
		if !t.IsPtr() {
			return nil, fmt.Errorf("oracle: param %d of @%s is not a pointer port", i, f.Name)
		}
		var dims []int64
		e := t.Elem
		for e.IsArray() {
			dims = append(dims, e.N)
			e = e.Elem
		}
		if len(dims) == 0 {
			return nil, fmt.Errorf("oracle: param %d of @%s has no static array shape", i, f.Name)
		}
		var elem *mlir.Type
		switch {
		case e.IsFP():
			elem = mlir.FloatType(e.Bits)
		case e.IsInt():
			elem = mlir.IntType(e.Bits)
		default:
			return nil, fmt.Errorf("oracle: param %d of @%s has unsupported element type", i, f.Name)
		}
		shapes = append(shapes, mlir.MemRef(dims, elem))
	}
	return shapes, nil
}

// NewFromLLVM captures the reference execution from an LLVM module —
// either ABI CheckLLVM recognizes — under explicit port shapes, for
// callers that never see the MLIR form (hls-adaptor on a .ll input: shapes
// come from the adapted signature via ShapesOf, the reference from the
// pristine pre-adapt module).
func NewFromLLVM(ref *llvm.Module, top string, shapes []*mlir.Type) (*Harness, error) {
	for i, t := range shapes {
		if !t.IsMemRef() || !t.HasStaticShape() {
			return nil, fmt.Errorf("oracle: shape %d is not a static memref", i)
		}
	}
	h := &Harness{Top: top, MaxULP: DefaultMaxULP, Fuel: mlir.DefaultFuel, shapes: shapes}
	f := ref.FindFunc(top)
	if f == nil {
		return nil, fmt.Errorf("oracle: function @%s not found in reference module", top)
	}
	mems := h.freshMems()
	args, err := h.llvmArgs(f, mems)
	if err != nil {
		return nil, err
	}
	mc := interp.NewMachine(ref)
	if h.Fuel > 0 {
		mc.Fuel = h.Fuel
	}
	if _, _, err := mc.Run(context.Background(), top, args...); err != nil {
		return nil, fmt.Errorf("oracle: reference execution: %w", err)
	}
	h.refF = make([][]float64, len(mems))
	h.refI = make([][]int64, len(mems))
	for ai, mem := range mems {
		h.captureMem(ai, mem)
	}
	return h, nil
}

// captureMem records one executed allocation as the reference output for
// argument ai, at the argument's element precision.
func (h *Harness) captureMem(ai int, mem *interp.Mem) {
	t := h.shapes[ai]
	n := int(t.NumElements())
	switch {
	case t.Elem.IsFloat() && t.Elem.Width == 32:
		h.refF[ai] = make([]float64, n)
		for i, v := range mem.Float32Slice() {
			h.refF[ai][i] = float64(v)
		}
	case t.Elem.IsFloat():
		h.refF[ai] = append([]float64(nil), mem.Float64Slice()...)
	case t.Elem.Width == 32:
		h.refI[ai] = make([]int64, n)
		for i, v := range mem.Int32Slice() {
			h.refI[ai][i] = int64(v)
		}
	default:
		h.refI[ai] = make([]int64, n)
		for i := 0; i < n; i++ {
			h.refI[ai][i] = int64(binary.LittleEndian.Uint64(mem.Bytes[i*8:]))
		}
	}
}

// Package absint is the abstract-interpretation layer of the static-analysis
// subsystem: a generic forward dataflow solver over the analysis.CFG plus
// three client domains over the LLVM-like IR — integer intervals (value
// ranges with widening/narrowing and branch refinement), a flow-insensitive
// Andersen-style points-to analysis (MayAlias), and sparse conditional
// constant propagation (unreachable-block detection). The lint checks, the
// scheduler's dependence test, and the DSE feasibility pre-check consume
// these results instead of hand-rolling per-check dataflow.
package absint

import (
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// Domain describes one abstract domain the solver can run. S is the whole
// per-program-point abstract state (an environment mapping SSA values to
// abstract values); the zero S never reaches Transfer — the solver only
// propagates states derived from Entry.
type Domain[S any] interface {
	// Entry is the abstract state on function entry.
	Entry(f *llvm.Function) S
	// Join computes the least upper bound of two states.
	Join(a, b S) S
	// Widen extrapolates next against prev so ascending chains terminate.
	// When at is a loop header, only the values that loop itself mutates —
	// the header's phis — need extrapolation; loop-invariant values carried
	// from outer loops must NOT be widened, or their branch-refined ranges
	// are lost to a stale copy cycling the backedge that narrowing can never
	// shrink (no condition inside the loop re-establishes them). at == nil is
	// the irreducible-cycle fallback: widen everything. Domains with finite
	// height can return Join(prev, next) regardless.
	Widen(at *llvm.Block, prev, next S) S
	// Equal reports whether two states are equal (fixpoint detection).
	Equal(a, b S) bool
	// Transfer applies the block's instructions to the incoming state.
	Transfer(b *llvm.Block, in S) S
	// FlowEdge specializes out for the from→to CFG edge: branch-condition
	// refinement and phi-operand binding live here. ok=false marks the edge
	// infeasible (the branch provably never takes it), which is how sparse
	// conditional behavior reaches every client domain.
	FlowEdge(from, to *llvm.Block, out S) (S, bool)
}

// Result holds the solved per-block states of one function.
type Result[S any] struct {
	CFG *analysis.CFG
	// In and Out are the abstract states at block entry and exit; only
	// blocks with Reached(b) have meaningful entries.
	In, Out map[*llvm.Block]S

	reached map[*llvm.Block]bool
}

// Reached reports whether the analysis found b reachable: CFG-reachable and
// with at least one feasible incoming path. CFG-reachable blocks with
// !Reached are the "unreachable code" sparse conditional analysis exposes.
func (r *Result[S]) Reached(b *llvm.Block) bool { return r.reached[b] }

type edgeKey struct{ from, to *llvm.Block }

// narrowingRounds caps the descending iteration after the widened fixpoint:
// each pass recovers loop-exit bounds lost to widening one nesting level
// deeper, and the loop exits early once an entire pass changes nothing.
const narrowingRounds = 8

// Solve runs the domain to fixpoint over f: an ascending worklist phase in
// reverse postorder with widening at natural-loop headers (and at any block
// revisited often enough that an irreducible cycle must be suspected),
// followed by a bounded narrowing phase. Edge infeasibility discovered by
// FlowEdge propagates: blocks whose every incoming edge is infeasible are
// never visited and stay !Reached.
func Solve[S any](f *llvm.Function, d Domain[S]) *Result[S] {
	cfg := analysis.NewCFG(f)
	dom := analysis.NewDomTree(cfg)
	loops := analysis.FindLoops(cfg, dom)
	isHeader := map[*llvm.Block]bool{}
	for _, l := range loops.Loops {
		isHeader[l.Header] = true
	}
	res := &Result[S]{
		CFG: cfg,
		In:  map[*llvm.Block]S{}, Out: map[*llvm.Block]S{},
		reached: map[*llvm.Block]bool{},
	}
	if len(cfg.Order) == 0 {
		return res
	}
	entry := cfg.Order[0]
	rpoIndex := map[*llvm.Block]int{}
	for i, b := range cfg.Order {
		rpoIndex[b] = i
	}

	edge := map[edgeKey]S{}
	hasEdge := map[edgeKey]bool{}

	inState := func(b *llvm.Block) (S, bool) {
		if b == entry {
			return d.Entry(f), true
		}
		var in S
		first := true
		for _, p := range cfg.Preds[b] {
			k := edgeKey{p, b}
			if !hasEdge[k] {
				continue
			}
			if first {
				in, first = edge[k], false
			} else {
				in = d.Join(in, edge[k])
			}
		}
		return in, !first
	}
	flowOut := func(b *llvm.Block, out S) (changed bool) {
		for _, s := range dedupSuccs(b) {
			k := edgeKey{b, s}
			es, feasible := d.FlowEdge(b, s, out)
			if !feasible {
				if hasEdge[k] {
					// Ascending states only grow, so a feasible edge cannot
					// become infeasible mid-ascent; this fires only while
					// narrowing, where dropping the edge is the refinement.
					hasEdge[k] = false
					changed = true
				}
				continue
			}
			if hasEdge[k] && d.Equal(edge[k], es) {
				continue
			}
			hasEdge[k], edge[k] = true, es
			changed = true
		}
		return changed
	}

	// Ascending phase: worklist ordered by reverse postorder. forceWiden
	// guards against irreducible cycles (no natural-loop header to widen at):
	// any block revisited implausibly often starts widening regardless.
	inWork := make([]bool, len(cfg.Order))
	visits := map[*llvm.Block]int{}
	forceWiden := 2*len(cfg.Order) + 8
	inWork[0] = true
	for {
		b := (*llvm.Block)(nil)
		for i, w := range inWork {
			if w {
				inWork[i] = false
				b = cfg.Order[i]
				break
			}
		}
		if b == nil {
			break
		}
		in, ok := inState(b)
		if !ok {
			continue // no feasible incoming edge yet
		}
		visits[b]++
		if old, seen := res.In[b]; seen {
			if visits[b] > forceWiden {
				in = d.Widen(nil, old, in)
			} else if isHeader[b] {
				in = d.Widen(b, old, in)
			}
			if res.reached[b] && d.Equal(old, in) {
				continue
			}
		}
		res.In[b], res.reached[b] = in, true
		out := d.Transfer(b, in)
		res.Out[b] = out
		if flowOut(b, out) {
			for _, s := range dedupSuccs(b) {
				if i, ok := rpoIndex[s]; ok {
					inWork[i] = true
				}
			}
		}
	}

	// Narrowing phase: recompute every state in RPO without widening,
	// letting refined branch conditions shrink intervals and kill edges.
	// Back-edge states come from the previous round — a sound
	// over-approximation — so each recomputed state stays sound.
	for round := 0; round < narrowingRounds; round++ {
		reached := map[*llvm.Block]bool{}
		changed := false
		for _, b := range cfg.Order {
			in, ok := inState(b)
			if !ok {
				for _, s := range dedupSuccs(b) {
					if hasEdge[edgeKey{b, s}] {
						hasEdge[edgeKey{b, s}] = false
						changed = true
					}
				}
				continue
			}
			reached[b] = true
			res.In[b] = in
			out := d.Transfer(b, in)
			res.Out[b] = out
			if flowOut(b, out) {
				changed = true
			}
		}
		res.reached = reached
		if !changed {
			break
		}
	}
	return res
}

// dedupSuccs returns a block's successors with a both-arms-same conditional
// branch collapsed to one edge (FlowEdge cannot tell the arms apart).
func dedupSuccs(b *llvm.Block) []*llvm.Block {
	succs := b.Succs()
	if len(succs) == 2 && succs[0] == succs[1] {
		return succs[:1]
	}
	return succs
}

package absint

import (
	"repro/internal/llvm"
)

// ienv maps integer-typed SSA values to their intervals. Missing values are
// implicitly the top of their type. Environments are treated immutably by
// the solver: every producing operation clones.
type ienv struct {
	m map[llvm.Value]Interval
}

func newIEnv() *ienv { return &ienv{m: map[llvm.Value]Interval{}} }

func (e *ienv) clone() *ienv {
	n := &ienv{m: make(map[llvm.Value]Interval, len(e.m))}
	for k, v := range e.m {
		n.m[k] = v
	}
	return n
}

// get evaluates v under e: constants exactly, tracked values from the map,
// anything else as the top of its type.
func (e *ienv) get(v llvm.Value) Interval {
	if c, ok := v.(*llvm.ConstInt); ok {
		return Const(c.Val)
	}
	if iv, ok := e.m[v]; ok {
		return iv
	}
	return typeTop(v.Type())
}

// intervalDomain is the value-range client of the generic solver.
type intervalDomain struct{}

func (intervalDomain) Entry(f *llvm.Function) *ienv { return newIEnv() }

func (intervalDomain) Join(a, b *ienv) *ienv {
	out := a.clone()
	for k, vb := range b.m {
		if va, ok := out.m[k]; ok {
			out.m[k] = va.Union(vb)
		} else {
			// Present on one path only: any dominated use sees exactly that
			// path's value (SSA), so keeping it loses nothing.
			out.m[k] = vb
		}
	}
	return out
}

// Widen extrapolates only the values the loop headed by at mutates: its own
// phis. Everything else joins — a loop-invariant value (an outer induction
// variable, say) keeps its branch-refined range instead of being blown to
// infinity by a widening no condition inside this loop could undo. With
// at == nil every value widens (the solver's irreducible-cycle fallback).
func (intervalDomain) Widen(at *llvm.Block, prev, next *ienv) *ienv {
	widenKey := func(k llvm.Value) bool {
		if at == nil {
			return true
		}
		in, ok := k.(*llvm.Instr)
		return ok && in.Op == llvm.OpPhi && in.Parent == at
	}
	out := next.clone()
	for k, vn := range next.m {
		if vp, ok := prev.m[k]; ok {
			if widenKey(k) {
				out.m[k] = vn.WidenFrom(vp)
			} else {
				out.m[k] = vn.Union(vp)
			}
		}
	}
	for k, vp := range prev.m {
		if _, ok := out.m[k]; !ok {
			out.m[k] = vp
		}
	}
	return out
}

func (intervalDomain) Equal(a, b *ienv) bool {
	if len(a.m) != len(b.m) {
		return false
	}
	for k, va := range a.m {
		vb, ok := b.m[k]
		if !ok || !va.Equal(vb) {
			return false
		}
	}
	return true
}

func (intervalDomain) Transfer(b *llvm.Block, in *ienv) *ienv {
	out := in.clone()
	for _, ins := range b.Instrs {
		if ins.Op == llvm.OpPhi {
			continue // bound per-edge by FlowEdge; the joined in-state holds it
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		out.m[ins] = evalInstr(out, ins)
	}
	return out
}

// evalInstr computes one integer instruction's interval under env.
func evalInstr(env *ienv, in *llvm.Instr) Interval {
	arg := func(i int) Interval { return env.get(in.Args[i]) }
	switch in.Op {
	case llvm.OpAdd:
		return clampTy(arg(0).Add(arg(1)), in.Ty)
	case llvm.OpSub:
		return clampTy(arg(0).Sub(arg(1)), in.Ty)
	case llvm.OpMul:
		return clampTy(arg(0).Mul(arg(1)), in.Ty)
	case llvm.OpSDiv:
		return clampTy(arg(0).Div(arg(1)), in.Ty)
	case llvm.OpSRem:
		return clampTy(arg(0).Rem(arg(1)), in.Ty)
	case llvm.OpAnd:
		return clampTy(andInterval(arg(0), arg(1)), in.Ty)
	case llvm.OpOr:
		return clampTy(orInterval(arg(0), arg(1)), in.Ty)
	case llvm.OpXor:
		return clampTy(xorInterval(arg(0), arg(1)), in.Ty)
	case llvm.OpShl:
		return clampTy(shlInterval(arg(0), arg(1)), in.Ty)
	case llvm.OpLShr:
		return clampTy(lshrInterval(arg(0), arg(1), in.Ty), in.Ty)
	case llvm.OpAShr:
		return clampTy(ashrInterval(arg(0), arg(1)), in.Ty)
	case llvm.OpSExt:
		return arg(0)
	case llvm.OpZExt:
		return zextInterval(arg(0), in.Args[0].Type())
	case llvm.OpTrunc:
		a := arg(0)
		if tt := typeTop(in.Ty); a.Intersect(tt).Equal(a) {
			return a // value provably fits the narrower type
		}
		return typeTop(in.Ty)
	case llvm.OpICmp:
		return icmpInterval(arg(0), arg(1), in.Pred)
	case llvm.OpSelect:
		c := arg(0)
		if v, ok := c.ConstVal(); ok {
			if v != 0 {
				return arg(1)
			}
			return arg(2)
		}
		return arg(1).Union(arg(2))
	}
	// Loads, calls, extractvalue, ptrtoint, ...: unknown.
	return typeTop(in.Ty)
}

// clampTy bounds a computed interval by its result type's representable
// range (a value of iN can never leave iN's range, whatever the arithmetic
// suggested).
func clampTy(iv Interval, ty *llvm.Type) Interval {
	if iv.Empty {
		return iv
	}
	return iv.Intersect(typeTop(ty))
}

func andInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	// x & (-2^k) clears the low k bits: exactly floor(x / 2^k) * 2^k, a
	// monotone map, so the range maps endpoint-to-endpoint. This is the
	// alignment-mask idiom (x & -8) that previously went to top.
	if c, ok := b.ConstVal(); ok {
		if k, isAlign := negPow2Exp(c); isAlign && a.Bounded() {
			return Range(alignDown(a.Lo, k), alignDown(a.Hi, k))
		}
	}
	if c, ok := a.ConstVal(); ok {
		if k, isAlign := negPow2Exp(c); isAlign && b.Bounded() {
			return Range(alignDown(b.Lo, k), alignDown(b.Hi, k))
		}
	}
	// x & y with either operand in [0, m] yields [0, m] when the other is
	// also nonnegative; with a nonnegative constant-ish mask it is [0, mask].
	if a.Lo >= 0 && b.Lo >= 0 {
		return Range(0, minI64(a.Hi, b.Hi))
	}
	if a.Lo >= 0 {
		return Range(0, a.Hi)
	}
	if b.Lo >= 0 {
		return Range(0, b.Hi)
	}
	// Both sides may be negative. Pointwise, x & y >= min(x,0) + min(y,0)
	// (equality of x&y + x|y = x+y with x|y <= -1 for two negatives) and
	// x & y <= max(x, y), which bounds the hull by the operand corners.
	return Range(satAdd(minI64(a.Lo, 0), minI64(b.Lo, 0)), maxI64(a.Hi, b.Hi))
}

// negPow2Exp reports whether c == -2^k for some 0 <= k < 63 (a low-bit
// clearing mask in two's complement) and returns k.
func negPow2Exp(c int64) (int, bool) {
	if c >= 0 || c == negInf {
		return 0, false
	}
	u := uint64(-c)
	if u&(u-1) != 0 {
		return 0, false
	}
	k := 0
	for u > 1 {
		u >>= 1
		k++
	}
	return k, true
}

// alignDown rounds x down to a multiple of 2^k (the exact effect of
// x & -2^k in two's complement).
func alignDown(x int64, k int) int64 {
	return x &^ (int64(1)<<uint(k) - 1)
}

func orInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	if a.Lo >= 0 && b.Lo >= 0 && a.Hi != posInf && b.Hi != posInf {
		// Or only sets bits: the result is at least either operand, and
		// cannot exceed the power-of-two envelope of both.
		return Range(maxI64(a.Lo, b.Lo), pow2Envelope(maxI64(a.Hi, b.Hi)))
	}
	// A negative constant mask forces the sign bit: x | c ∈ [c, -1].
	if c, ok := b.ConstVal(); ok && c < 0 {
		return Range(c, -1)
	}
	if c, ok := a.ConstVal(); ok && c < 0 {
		return Range(c, -1)
	}
	return Top()
}

func xorInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	// x ^ -1 is bitwise not: exactly -x - 1, an order-reversing bijection.
	if c, ok := b.ConstVal(); ok && c == -1 {
		return Interval{Lo: satSub(satNeg(a.Hi), 1), Hi: satSub(satNeg(a.Lo), 1)}
	}
	if c, ok := a.ConstVal(); ok && c == -1 {
		return Interval{Lo: satSub(satNeg(b.Hi), 1), Hi: satSub(satNeg(b.Lo), 1)}
	}
	if a.Lo >= 0 && b.Lo >= 0 && a.Hi != posInf && b.Hi != posInf {
		// Result cannot exceed the next power-of-two envelope of both.
		return Range(0, pow2Envelope(maxI64(a.Hi, b.Hi)))
	}
	return Top()
}

// lshrInterval models the logical right shift of the type-width unsigned
// value. ty is the result type (operands share it).
func lshrInterval(a, s Interval, ty *llvm.Type) Interval {
	if a.Empty || s.Empty {
		return Bottom()
	}
	if !s.Bounded() || s.Lo < 0 || s.Hi > 63 {
		return Top()
	}
	if a.Lo >= 0 {
		// Nonnegative operand: logical and arithmetic shifts agree, and the
		// result is monotone decreasing in the shift amount.
		shr := func(x int64, k int64) int64 {
			if x == posInf {
				if k == 0 {
					return posInf
				}
				return posInf >> uint(k)
			}
			return x >> uint(k)
		}
		return Range(shr(a.Lo, s.Hi), shr(a.Hi, s.Lo))
	}
	// Possibly-negative operand: the masked unsigned value spans the whole
	// type width, so only the shift amount bounds the result. With a shift
	// of zero the sign bit can survive (the sign-extended representation
	// stays negative), so only the type bounds the result then.
	bits := 64
	if ty != nil && ty.IsInt() && ty.Bits > 0 && ty.Bits <= 64 {
		bits = ty.Bits
	}
	if s.Lo == 0 {
		return typeTop(ty)
	}
	var umax uint64
	if bits == 64 {
		umax = ^uint64(0) >> uint(s.Lo)
	} else {
		umax = (uint64(1)<<uint(bits) - 1) >> uint(s.Lo)
	}
	return Range(0, int64(umax))
}

// pow2Envelope returns 2^ceil(log2(m+1)) - 1: the largest value expressible
// in the bits needed for m.
func pow2Envelope(m int64) int64 {
	var e int64 = 1
	for e-1 < m && e > 0 {
		e <<= 1
	}
	if e <= 0 {
		return posInf
	}
	return e - 1
}

func shlInterval(a, s Interval) Interval {
	if a.Empty || s.Empty {
		return Bottom()
	}
	if !s.Bounded() || s.Lo < 0 || s.Hi > 62 || !a.Bounded() {
		return Top()
	}
	return cornerHull(
		satMul(a.Lo, int64(1)<<s.Lo), satMul(a.Lo, int64(1)<<s.Hi),
		satMul(a.Hi, int64(1)<<s.Lo), satMul(a.Hi, int64(1)<<s.Hi))
}

func ashrInterval(a, s Interval) Interval {
	if a.Empty || s.Empty {
		return Bottom()
	}
	if !s.Bounded() || s.Lo < 0 || s.Hi > 62 {
		return Top()
	}
	// Arithmetic shift floors toward -inf and is monotone in both args.
	shr := func(x int64, k int64) int64 {
		if x == negInf || x == posInf {
			return x
		}
		return x >> uint(k)
	}
	return cornerHull(
		shr(a.Lo, s.Lo), shr(a.Lo, s.Hi),
		shr(a.Hi, s.Lo), shr(a.Hi, s.Hi))
}

func zextInterval(a Interval, from *llvm.Type) Interval {
	if a.Empty {
		return a
	}
	if a.Lo >= 0 {
		return a // nonnegative: zext is the identity
	}
	if from != nil && from.IsInt() && from.Bits < 64 && from.Bits > 0 {
		return Range(0, int64(1)<<from.Bits-1)
	}
	return Interval{Lo: 0, Hi: posInf}
}

// icmpInterval folds a comparison whose outcome the operand intervals
// decide; otherwise [0, 1].
func icmpInterval(a, b Interval, pred string) Interval {
	if a.Empty || b.Empty {
		return Range(0, 1)
	}
	decided := func(alwaysTrue, alwaysFalse bool) Interval {
		switch {
		case alwaysTrue:
			return Const(1)
		case alwaysFalse:
			return Const(0)
		}
		return Range(0, 1)
	}
	switch pred {
	case "eq":
		if ca, ok := a.ConstVal(); ok {
			if cb, ok := b.ConstVal(); ok {
				return decided(ca == cb, ca != cb)
			}
		}
		return decided(false, a.Intersect(b).Empty)
	case "ne":
		if ca, ok := a.ConstVal(); ok {
			if cb, ok := b.ConstVal(); ok {
				return decided(ca != cb, ca == cb)
			}
		}
		return decided(a.Intersect(b).Empty, false)
	case "slt":
		return decided(a.Hi < b.Lo, a.Lo >= b.Hi)
	case "sle":
		return decided(a.Hi <= b.Lo, a.Lo > b.Hi)
	case "sgt":
		return decided(a.Lo > b.Hi, a.Hi <= b.Lo)
	case "sge":
		return decided(a.Lo >= b.Hi, a.Hi < b.Lo)
	case "ult", "ule", "ugt", "uge":
		// Sound only when both sides are provably nonnegative (signed and
		// unsigned orders then agree).
		if a.Lo >= 0 && b.Lo >= 0 {
			switch pred {
			case "ult":
				return decided(a.Hi < b.Lo, a.Lo >= b.Hi)
			case "ule":
				return decided(a.Hi <= b.Lo, a.Lo > b.Hi)
			case "ugt":
				return decided(a.Lo > b.Hi, a.Hi <= b.Lo)
			case "uge":
				return decided(a.Lo >= b.Hi, a.Hi < b.Lo)
			}
		}
	}
	return Range(0, 1)
}

// FlowEdge refines the out-state along a conditional branch edge and binds
// the target block's phis to this edge's incoming values. ok=false when the
// refined condition is unsatisfiable (the edge cannot be taken).
func (d intervalDomain) FlowEdge(from, to *llvm.Block, out *ienv) (*ienv, bool) {
	env := out.clone()
	term := from.Terminator()
	if term != nil && term.Op == llvm.OpCondBr && len(term.Blocks) == 2 && term.Blocks[0] != term.Blocks[1] {
		takenTrue := term.Blocks[0] == to
		cond := env.get(term.Args[0])
		if v, ok := cond.ConstVal(); ok && (v != 0) != takenTrue {
			return nil, false // branch provably goes the other way
		}
		if cmp, ok := term.Args[0].(*llvm.Instr); ok && cmp.Op == llvm.OpICmp {
			if !refineICmp(env, cmp, takenTrue) {
				return nil, false
			}
		}
	}
	// Bind the target's phis from this edge's operands (post-refinement, so
	// a refined operand flows its narrowed interval into the phi).
	for _, ins := range to.Instrs {
		if ins.Op != llvm.OpPhi {
			break
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		for i, blk := range ins.Blocks {
			if blk == from && i < len(ins.Args) {
				env.m[ins] = env.get(ins.Args[i])
			}
		}
	}
	return env, true
}

// refineICmp narrows both compare operands under "cmp is taken-true/false".
// Returns false when a refined interval is empty (edge infeasible).
func refineICmp(env *ienv, cmp *llvm.Instr, taken bool) bool {
	a, b := cmp.Args[0], cmp.Args[1]
	ia, ib := env.get(a), env.get(b)
	pred := cmp.Pred
	if !taken {
		pred = negatePred(pred)
	}
	na, nb := ia, ib
	switch pred {
	case "eq":
		na = ia.Intersect(ib)
		nb = na
	case "ne":
		if c, ok := ib.ConstVal(); ok {
			na = trimPoint(ia, c)
		}
		if c, ok := ia.ConstVal(); ok {
			nb = trimPoint(ib, c)
		}
	case "slt":
		na = ia.Intersect(Interval{Lo: negInf, Hi: satSub(ib.Hi, 1)})
		nb = ib.Intersect(Interval{Lo: satAdd(ia.Lo, 1), Hi: posInf})
	case "sle":
		na = ia.Intersect(Interval{Lo: negInf, Hi: ib.Hi})
		nb = ib.Intersect(Interval{Lo: ia.Lo, Hi: posInf})
	case "sgt":
		na = ia.Intersect(Interval{Lo: satAdd(ib.Lo, 1), Hi: posInf})
		nb = ib.Intersect(Interval{Lo: negInf, Hi: satSub(ia.Hi, 1)})
	case "sge":
		na = ia.Intersect(Interval{Lo: ib.Lo, Hi: posInf})
		nb = ib.Intersect(Interval{Lo: negInf, Hi: ia.Hi})
	case "ult":
		// a <u b with b's unsigned value known ≤ signed-max: a ∈ [0, b.Hi-1].
		if ib.Lo >= 0 && ib.Hi != posInf {
			na = ia.Intersect(Range(0, ib.Hi-1))
		}
		if ia.Lo >= 0 {
			nb = ib.Intersect(Interval{Lo: satAdd(ia.Lo, 1), Hi: posInf})
		}
	case "ule":
		if ib.Lo >= 0 && ib.Hi != posInf {
			na = ia.Intersect(Range(0, ib.Hi))
		}
		if ia.Lo >= 0 {
			nb = ib.Intersect(Interval{Lo: ia.Lo, Hi: posInf})
		}
	case "ugt":
		if ia.Lo >= 0 && ia.Hi != posInf {
			nb = ib.Intersect(Range(0, ia.Hi-1))
		}
		if ib.Lo >= 0 {
			na = ia.Intersect(Interval{Lo: satAdd(ib.Lo, 1), Hi: posInf})
		}
	case "uge":
		if ia.Lo >= 0 && ia.Hi != posInf {
			nb = ib.Intersect(Range(0, ia.Hi))
		}
		if ib.Lo >= 0 {
			na = ia.Intersect(Interval{Lo: ib.Lo, Hi: posInf})
		}
	default:
		return true
	}
	if na.Empty || nb.Empty {
		return false
	}
	if _, isConst := a.(*llvm.ConstInt); !isConst {
		env.m[a] = na
	}
	if _, isConst := b.(*llvm.ConstInt); !isConst {
		env.m[b] = nb
	}
	return true
}

// trimPoint removes c from iv when c is one of its endpoints.
func trimPoint(iv Interval, c int64) Interval {
	switch {
	case iv.Empty:
		return iv
	case iv.Lo == c && iv.Hi == c:
		return Bottom()
	case iv.Lo == c:
		return Range(c+1, iv.Hi)
	case iv.Hi == c:
		return Range(iv.Lo, c-1)
	}
	return iv
}

func negatePred(pred string) string {
	switch pred {
	case "eq":
		return "ne"
	case "ne":
		return "eq"
	case "slt":
		return "sge"
	case "sle":
		return "sgt"
	case "sgt":
		return "sle"
	case "sge":
		return "slt"
	case "ult":
		return "uge"
	case "ule":
		return "ugt"
	case "ugt":
		return "ule"
	case "uge":
		return "ult"
	}
	return pred
}

// IntervalResult exposes one function's solved value ranges.
type IntervalResult struct {
	res *Result[*ienv]
}

// Intervals runs the interval analysis over f.
func Intervals(f *llvm.Function) *IntervalResult {
	return &IntervalResult{res: Solve[*ienv](f, intervalDomain{})}
}

// At returns v's interval at the program point of block b: the block's
// out-state for values defined in b, the (branch-refined) in-state
// otherwise. Unreached blocks yield the empty interval.
func (r *IntervalResult) At(b *llvm.Block, v llvm.Value) Interval {
	if !r.res.Reached(b) {
		return Bottom()
	}
	env := r.res.In[b]
	if in, ok := v.(*llvm.Instr); ok && in.Parent == b {
		env = r.res.Out[b]
	}
	if env == nil {
		return typeTop(v.Type())
	}
	return env.get(v)
}

// Unreachable reports whether b is CFG-reachable yet provably never
// executed (every incoming edge's branch condition excludes it).
func (r *IntervalResult) Unreachable(b *llvm.Block) bool {
	return r.res.CFG.Reachable(b) && !r.res.Reached(b)
}

package absint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llvm"
)

// Loc is one abstract memory location: a root allocation (alloca
// instruction or pointer parameter) plus a flat constant element index.
// Elem = ElemUnknown means "some element of Root". Field sensitivity for
// static array shapes comes from folding constant GEP indices into Elem via
// the row-major layout.
type Loc struct {
	Root llvm.Value
	Elem int64
}

// ElemUnknown marks a location whose element offset is not a compile-time
// constant.
const ElemUnknown = int64(-1)

// PointsToResult is the flow-insensitive Andersen-style points-to relation
// of one function. Pointer roots are the function's allocas and pointer
// parameters; HLS interface arrays are physically disjoint memories, so
// distinct roots never alias — the same per-base model the scheduler's
// MemAccesses/port accounting already assumes.
type PointsToResult struct {
	sets map[llvm.Value]map[Loc]bool
	// escapes maps a root to the first reason its address left the
	// function's view (callee argument, stored as a value, ptrtoint, ...).
	escapes map[llvm.Value]string
	// unknown marks pointer values with no computable target set (loaded
	// pointers, inttoptr); they may alias anything.
	unknown map[llvm.Value]bool
	// rootName gives roots deterministic names for Describe output.
	rootName map[llvm.Value]string
}

// PointsTo computes the points-to relation for f.
func PointsTo(f *llvm.Function) *PointsToResult {
	r := &PointsToResult{
		sets:     map[llvm.Value]map[Loc]bool{},
		escapes:  map[llvm.Value]string{},
		unknown:  map[llvm.Value]bool{},
		rootName: map[llvm.Value]string{},
	}
	// Roots: pointer parameters and allocas.
	for i, p := range f.Params {
		if p.Ty.IsPtr() {
			r.addTarget(p, Loc{Root: p, Elem: 0})
			r.rootName[p] = fmt.Sprintf("%%%s (arg%d)", p.Name, i)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca {
				r.addTarget(in, Loc{Root: in, Elem: 0})
				r.rootName[in] = fmt.Sprintf("%%%s (alloca)", in.Name)
			}
		}
	}
	// Constraint propagation to fixpoint: the subset constraints of the
	// pointer-producing instructions, iterated until stable (the function
	// bodies are small enough that a simple round-robin converges fast).
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if r.applyInstr(in) {
					changed = true
				}
			}
		}
	}
	// Escape collection (after sets stabilize, so pointer copies are known).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			r.collectEscapes(in)
		}
	}
	return r
}

// applyInstr adds the instruction's points-to constraints; reports change.
func (r *PointsToResult) applyInstr(in *llvm.Instr) bool {
	switch in.Op {
	case llvm.OpGEP:
		off, known := r.gepOffset(in)
		changed := false
		for l := range r.sets[in.Args[0]] {
			nl := Loc{Root: l.Root, Elem: ElemUnknown}
			if known && l.Elem != ElemUnknown {
				nl.Elem = l.Elem + off
			}
			if r.addTarget(in, nl) {
				changed = true
			}
		}
		if r.unknown[in.Args[0]] && !r.unknown[in] {
			r.unknown[in] = true
			changed = true
		}
		return changed
	case llvm.OpBitcast:
		return r.copyFrom(in, in.Args[0])
	case llvm.OpSelect:
		if in.Ty.IsPtr() {
			c := r.copyFrom(in, in.Args[1])
			return r.copyFrom(in, in.Args[2]) || c
		}
	case llvm.OpPhi:
		if in.Ty.IsPtr() {
			changed := false
			for _, a := range in.Args {
				if r.copyFrom(in, a) {
					changed = true
				}
			}
			return changed
		}
	case llvm.OpLoad, llvm.OpIntToPtr, llvm.OpCall, llvm.OpExtractValue:
		if in.Ty.IsPtr() && !r.unknown[in] {
			r.unknown[in] = true
			return true
		}
	}
	return false
}

// gepOffset folds a GEP's indices into a flat element offset using the
// static array shape of its source element type. ok=false when any index is
// non-constant (the target element is then unknown).
func (r *PointsToResult) gepOffset(in *llvm.Instr) (int64, bool) {
	// Leading index steps over whole objects of the source element type;
	// inner indices walk the array shape row-major.
	consts := make([]int64, 0, len(in.Args)-1)
	for _, a := range in.Args[1:] {
		c, ok := a.(*llvm.ConstInt)
		if !ok {
			return 0, false
		}
		consts = append(consts, c.Val)
	}
	if len(consts) == 0 {
		return 0, true
	}
	ty := in.SrcElem
	off := consts[0] * flatLen(ty)
	for _, c := range consts[1:] {
		if ty == nil || !ty.IsArray() {
			return 0, false // struct GEPs and over-indexing: stay unknown
		}
		ty = ty.Elem
		off += c * flatLen(ty)
	}
	return off, true
}

// flatLen returns the number of scalar elements a type flattens to.
func flatLen(ty *llvm.Type) int64 {
	if ty == nil {
		return 1
	}
	if ty.IsArray() {
		return ty.N * flatLen(ty.Elem)
	}
	return 1
}

func (r *PointsToResult) addTarget(v llvm.Value, l Loc) bool {
	s := r.sets[v]
	if s == nil {
		s = map[Loc]bool{}
		r.sets[v] = s
	}
	if s[l] {
		return false
	}
	s[l] = true
	return true
}

func (r *PointsToResult) copyFrom(dst llvm.Value, src llvm.Value) bool {
	changed := false
	for l := range r.sets[src] {
		if r.addTarget(dst, l) {
			changed = true
		}
	}
	if r.unknown[src] && !r.unknown[dst] {
		r.unknown[dst] = true
		changed = true
	}
	return changed
}

// collectEscapes records roots whose address flows somewhere this analysis
// cannot track: callee arguments, stored-as-value, integer casts, returns,
// aggregate inserts.
func (r *PointsToResult) collectEscapes(in *llvm.Instr) {
	reason := ""
	var args []llvm.Value
	switch in.Op {
	case llvm.OpCall:
		reason = "passed to call @" + in.Callee
		args = in.Args
	case llvm.OpPtrToInt:
		reason = "cast to integer"
		args = in.Args
	case llvm.OpRet:
		reason = "returned"
		args = in.Args
	case llvm.OpInsertValue:
		reason = "packed into an aggregate"
		args = in.Args
	case llvm.OpStore:
		reason = "stored as a value"
		args = in.Args[:1] // only the stored value escapes, not the address
	default:
		return
	}
	for _, a := range args {
		if a == nil || a.Type() == nil || !a.Type().IsPtr() {
			continue
		}
		for l := range r.sets[a] {
			if _, seen := r.escapes[l.Root]; !seen {
				r.escapes[l.Root] = fmt.Sprintf("%s %s", a.Ident(), reason)
			}
		}
	}
}

// Targets returns v's location set; ok=false when v is untracked or may
// point anywhere (treat as aliasing everything).
func (r *PointsToResult) Targets(v llvm.Value) ([]Loc, bool) {
	if r.unknown[v] {
		return nil, false
	}
	s := r.sets[v]
	if len(s) == 0 {
		return nil, false
	}
	out := make([]Loc, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := r.rootName[out[i].Root], r.rootName[out[j].Root]
		if ni != nj {
			return ni < nj
		}
		return out[i].Elem < out[j].Elem
	})
	return out, true
}

// MayAlias reports whether two pointer values may address the same memory.
// Distinct roots never alias (allocas are separate storage; HLS interface
// arrays are disjoint physical memories, matching the scheduler's per-base
// model). Same-root locations alias unless both element indices are known
// and different.
func (r *PointsToResult) MayAlias(a, b llvm.Value) bool {
	sa, oka := r.Targets(a)
	sb, okb := r.Targets(b)
	if !oka || !okb {
		return true // unknown pointer: assume the worst
	}
	for _, la := range sa {
		for _, lb := range sb {
			if la.Root != lb.Root {
				continue
			}
			if la.Elem == ElemUnknown || lb.Elem == ElemUnknown || la.Elem == lb.Elem {
				return true
			}
		}
	}
	return false
}

// Escaped reports whether the root allocation's address left the function's
// view, with the reason (empty when it did not escape).
func (r *PointsToResult) Escaped(root llvm.Value) (string, bool) {
	reason, ok := r.escapes[root]
	return reason, ok
}

// DerivedFrom reports whether every location v may point to lies in root
// (v is a pointer into that allocation and nothing else).
func (r *PointsToResult) DerivedFrom(v llvm.Value, root llvm.Value) bool {
	s, ok := r.Targets(v)
	if !ok || len(s) == 0 {
		return false
	}
	for _, l := range s {
		if l.Root != root {
			return false
		}
	}
	return true
}

// Touches reports whether v may point into root.
func (r *PointsToResult) Touches(v llvm.Value, root llvm.Value) bool {
	s, ok := r.Targets(v)
	if !ok {
		return true
	}
	for _, l := range s {
		if l.Root == root {
			return true
		}
	}
	return false
}

// Describe renders v's points-to set for diagnostics and -explain output.
func (r *PointsToResult) Describe(v llvm.Value) string {
	s, ok := r.Targets(v)
	if !ok {
		return "{unknown: may alias any memory}"
	}
	parts := make([]string, 0, len(s))
	for _, l := range s {
		name := r.rootName[l.Root]
		if name == "" {
			name = l.Root.Ident()
		}
		if l.Elem == ElemUnknown {
			parts = append(parts, name+"[*]")
		} else {
			parts = append(parts, fmt.Sprintf("%s[%d]", name, l.Elem))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

package absint

import (
	"testing"

	"repro/internal/llvm"
)

// TestBitOpTransfers exercises the interval transfer of every bit operation
// one op at a time, with the constant-operand shapes (alignment masks,
// sign-setting masks, bitwise not, constant shifts) that previously fell to
// top.
func TestBitOpTransfers(t *testing.T) {
	i32 := llvm.IntT(32)
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		// and
		{"and-nonneg", andInterval(Range(0, 100), Range(0, 15)), Range(0, 15)},
		{"and-nonneg-one-side", andInterval(Range(-5, 7), Range(0, 63)), Range(0, 63)},
		{"and-align-mask", andInterval(Range(5, 21), Const(-8)), Range(0, 16)},
		{"and-align-mask-neg", andInterval(Range(-13, -5), Const(-4)), Range(-16, -8)},
		{"and-align-mask-swapped", andInterval(Const(-8), Range(5, 21)), Range(0, 16)},
		{"and-both-maybe-neg", andInterval(Range(-4, 3), Range(-2, 5)), Range(-6, 5)},
		{"and-empty", andInterval(Bottom(), Range(0, 1)), Bottom()},
		// or
		{"or-nonneg", orInterval(Range(4, 6), Range(1, 1)), Range(4, 7)},
		{"or-nonneg-lo", orInterval(Range(8, 9), Range(2, 3)), Range(8, 15)},
		{"or-neg-mask", orInterval(Range(0, 100), Const(-16)), Range(-16, -1)},
		{"or-neg-mask-swapped", orInterval(Const(-16), Range(0, 100)), Range(-16, -1)},
		{"or-unknown", orInterval(Top(), Range(-3, 5)), Top()},
		// xor
		{"xor-nonneg", xorInterval(Range(0, 5), Range(0, 9)), Range(0, 15)},
		{"xor-not", xorInterval(Range(3, 10), Const(-1)), Range(-11, -4)},
		{"xor-not-swapped", xorInterval(Const(-1), Range(-4, 7)), Range(-8, 3)},
		{"xor-unknown", xorInterval(Range(-1, 1), Range(0, 1)), Top()},
		// shl
		{"shl-const", shlInterval(Range(1, 5), Const(3)), Range(8, 40)},
		{"shl-range", shlInterval(Range(-2, 3), Range(0, 2)), Range(-8, 12)},
		{"shl-unbounded", shlInterval(Top(), Const(1)), Top()},
		// lshr
		{"lshr-nonneg-const", lshrInterval(Range(16, 64), Const(2), i32), Range(4, 16)},
		{"lshr-nonneg-range", lshrInterval(Range(16, 64), Range(1, 3), i32), Range(2, 32)},
		{"lshr-neg-i32", lshrInterval(Range(-8, -1), Const(1), i32), Range(0, (1<<31)-1)},
		{"lshr-neg-shift0", lshrInterval(Range(-8, -1), Const(0), i32), typeTop(i32)},
		{"lshr-neg-i64", lshrInterval(Range(-8, -1), Const(1), llvm.I64()), Range(0, posInf)},
		{"lshr-amount-unknown", lshrInterval(Range(0, 7), Top(), i32), Top()},
		// ashr
		{"ashr-const", ashrInterval(Range(-17, 33), Const(2)), Range(-5, 8)},
		{"ashr-range", ashrInterval(Range(64, 64), Range(1, 3)), Range(8, 32)},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

// TestBitOpTransfersEndToEnd runs the full interval analysis over a straight-
// line function mixing the bit ops, checking the solved result of each value
// (the transfer gaps used to leave every one of these at the type's top).
func TestBitOpTransfersEndToEnd(t *testing.T) {
	i64 := llvm.I64()
	f := llvm.NewFunction("bits", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	guard := f.AddBlock("guard")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	x := f.Params[0]
	cmp := b.ICmp("ult", x, llvm.CI(i64, 100))
	b.CondBr(cmp, guard, exit)

	b.SetBlock(guard)
	masked := b.Binary(llvm.OpAnd, x, llvm.CI(i64, -8))
	masked.Name = "masked"
	halved := b.Binary(llvm.OpLShr, masked, llvm.CI(i64, 1))
	halved.Name = "halved"
	tagged := b.Binary(llvm.OpOr, halved, llvm.CI(i64, 1))
	tagged.Name = "tagged"
	flipped := b.Binary(llvm.OpXor, tagged, llvm.CI(i64, -1))
	flipped.Name = "flipped"
	b.Br(exit)

	b.SetBlock(exit)
	b.Ret(nil)

	iv := Intervals(f)
	want := map[*llvm.Instr]Interval{
		masked:  Range(0, 96),
		halved:  Range(0, 48),
		tagged:  Range(1, 63),
		flipped: Range(-64, -2),
	}
	for in, w := range want {
		got := iv.At(guard, in)
		if !got.Equal(w) {
			t.Errorf("%%%s: got %s, want %s", in.Name, got, w)
		}
	}
}

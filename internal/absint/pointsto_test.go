package absint

import (
	"strings"
	"testing"

	"repro/internal/llvm"
)

// buildPtsFixture: two array params, one alloca, GEPs at constant and
// variable offsets.
func buildPtsFixture(t *testing.T) (*llvm.Function, map[string]*llvm.Instr) {
	t.Helper()
	arr := llvm.ArrayOf(16, llvm.FloatT())
	f := llvm.NewFunction("pts", llvm.Void(),
		&llvm.Param{Name: "A", Ty: llvm.Ptr(arr)},
		&llvm.Param{Name: "B", Ty: llvm.Ptr(arr)},
		&llvm.Param{Name: "n", Ty: llvm.I64()})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)

	ins := map[string]*llvm.Instr{}
	ins["buf"] = b.Alloca(arr)
	ins["a0"] = b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	ins["a5"] = b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 5))
	ins["an"] = b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), f.Params[2])
	ins["b5"] = b.GEP(arr, f.Params[1], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 5))
	ins["buf5"] = b.GEP(arr, ins["buf"], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 5))
	b.Ret(nil)
	return f, ins
}

func TestPointsToAliasing(t *testing.T) {
	f, ins := buildPtsFixture(t)
	r := PointsTo(f)

	cases := []struct {
		name string
		a, b llvm.Value
		want bool
	}{
		{"distinct-params", ins["a5"], ins["b5"], false},
		{"param-vs-alloca", ins["a5"], ins["buf5"], false},
		{"same-root-same-elem", ins["a5"], ins["a5"], true},
		{"same-root-diff-elem", ins["a0"], ins["a5"], false},
		{"same-root-var-elem", ins["an"], ins["a5"], true},
		{"var-elem-other-root", ins["an"], ins["b5"], false},
	}
	for _, c := range cases {
		if got := r.MayAlias(c.a, c.b); got != c.want {
			t.Errorf("%s: MayAlias=%v, want %v", c.name, got, c.want)
		}
	}
	if d := r.Describe(ins["a5"]); !strings.Contains(d, "%A (arg0)[5]") {
		t.Errorf("Describe(a5) = %q", d)
	}
	if d := r.Describe(ins["an"]); !strings.Contains(d, "%A (arg0)[*]") {
		t.Errorf("Describe(an) = %q", d)
	}
	if _, esc := r.Escaped(ins["buf"]); esc {
		t.Error("buf should not escape")
	}
	if !r.DerivedFrom(ins["a5"], f.Params[0]) {
		t.Error("a5 derives from A")
	}
	if r.Touches(ins["b5"], f.Params[0]) {
		t.Error("b5 does not touch A")
	}
}

// TestPointsTo2DFieldSensitivity: constant 2D indices flatten row-major, so
// M[1][2] and M[2][1] occupy distinct elements.
func TestPointsTo2DFieldSensitivity(t *testing.T) {
	mat := llvm.ArrayOf(4, llvm.ArrayOf(4, llvm.FloatT()))
	f := llvm.NewFunction("mat", llvm.Void(), &llvm.Param{Name: "M", Ty: llvm.Ptr(mat)})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	g12 := b.GEP(mat, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 2))
	g21 := b.GEP(mat, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 2), llvm.CI(llvm.I64(), 1))
	b.Ret(nil)

	r := PointsTo(f)
	if r.MayAlias(g12, g21) {
		t.Error("M[1][2] and M[2][1] must not alias")
	}
	locs, ok := r.Targets(g12)
	if !ok || len(locs) != 1 || locs[0].Elem != 6 {
		t.Errorf("M[1][2] flat element: got %v ok=%v, want elem 6", locs, ok)
	}
}

// TestPointsToMerges: phi and select union their incoming sets; a pointer
// loaded from memory is unknown and aliases everything.
func TestPointsToMerges(t *testing.T) {
	arr := llvm.ArrayOf(8, llvm.FloatT())
	f := llvm.NewFunction("merge", llvm.Void(),
		&llvm.Param{Name: "A", Ty: llvm.Ptr(arr)},
		&llvm.Param{Name: "c", Ty: llvm.I1()})
	entry := f.AddBlock("entry")
	left := f.AddBlock("left")
	right := f.AddBlock("right")
	join := f.AddBlock("join")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	buf := b.Alloca(arr)
	b.CondBr(f.Params[1], left, right)
	b.SetBlock(left)
	ga := b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 1))
	b.Br(join)
	b.SetBlock(right)
	gb := b.GEP(arr, buf, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 1))
	b.Br(join)
	b.SetBlock(join)
	ph := b.Phi(llvm.Ptr(llvm.FloatT()))
	ph.AddIncoming(ga, left)
	ph.AddIncoming(gb, right)
	loaded := b.Load(llvm.Ptr(llvm.FloatT()), ga)
	b.Ret(nil)

	r := PointsTo(f)
	if !r.MayAlias(ph, ga) || !r.MayAlias(ph, gb) {
		t.Error("phi must alias both incoming pointers")
	}
	if !r.Touches(ph, f.Params[0]) || !r.Touches(ph, buf) {
		t.Error("phi touches both roots")
	}
	if r.DerivedFrom(ph, f.Params[0]) {
		t.Error("phi is not derived solely from A")
	}
	if _, ok := r.Targets(loaded); ok {
		t.Error("a loaded pointer has no computable target set")
	}
	if !r.MayAlias(loaded, ga) {
		t.Error("unknown pointers alias everything")
	}
}

// TestPointsToEscapes: addresses passed to calls, stored as values, or
// returned are flagged with a reason.
func TestPointsToEscapes(t *testing.T) {
	arr := llvm.ArrayOf(8, llvm.FloatT())
	f := llvm.NewFunction("esc", llvm.Ptr(llvm.FloatT()))
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	callee := b.Alloca(arr)
	ret := b.Alloca(arr)
	clean := b.Alloca(arr)
	gc := b.GEP(arr, callee, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	b.Call("helper", llvm.Void(), gc)
	gr := b.GEP(arr, ret, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	gx := b.GEP(arr, clean, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	b.Store(llvm.CF(llvm.FloatT(), 0), gx)
	b.Ret(gr)

	r := PointsTo(f)
	if reason, ok := r.Escaped(callee); !ok || !strings.Contains(reason, "call @helper") {
		t.Errorf("callee escape: %q ok=%v", reason, ok)
	}
	if reason, ok := r.Escaped(ret); !ok || !strings.Contains(reason, "returned") {
		t.Errorf("ret escape: %q ok=%v", reason, ok)
	}
	if _, ok := r.Escaped(clean); ok {
		t.Error("storing INTO an alloca is not an escape")
	}
}

package absint

import (
	"testing"

	"repro/internal/llvm"
)

// TestSCCPConstBranch: a folded constant condition makes the dead arm
// unreachable, and phi values in the merge collapse to the live arm.
func TestSCCPConstBranch(t *testing.T) {
	f := llvm.NewFunction("cb", llvm.Void())
	entry := f.AddBlock("entry")
	then := f.AddBlock("then")
	els := f.AddBlock("else")
	join := f.AddBlock("join")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	x := b.Add(llvm.CI(llvm.I64(), 2), llvm.CI(llvm.I64(), 3))
	cmp := b.ICmp("sgt", x, llvm.CI(llvm.I64(), 10)) // 5 > 10: false
	b.CondBr(cmp, then, els)
	b.SetBlock(then)
	b.Br(join)
	b.SetBlock(els)
	b.Br(join)
	b.SetBlock(join)
	ph := b.Phi(llvm.I64())
	ph.AddIncoming(llvm.CI(llvm.I64(), 111), then)
	ph.AddIncoming(llvm.CI(llvm.I64(), 222), els)
	b.Ret(nil)

	r := SCCP(f)
	if !r.Unreachable(then) {
		t.Error("then-arm of a constant-false branch should be unreachable")
	}
	if r.Unreachable(els) || r.Unreachable(join) {
		t.Error("else and join are reachable")
	}
	if v, ok := r.ConstOf(join, ph); !ok || v != 222 {
		t.Errorf("phi folds to the live arm: got %d ok=%v, want 222", v, ok)
	}
	if v, ok := r.BranchConst(entry); !ok || v != 0 {
		t.Errorf("branch condition: got %d ok=%v, want 0", v, ok)
	}
}

// TestSCCPLoopNotUnreachable: loop bodies and exits must never be reported
// unreachable — the back-edge join overdefines the induction variable.
func TestSCCPLoopNotUnreachable(t *testing.T) {
	f, _, body := buildCountedLoop(t, "slt", 0, 1, 64)
	r := SCCP(f)
	for _, b := range f.Blocks {
		if r.Unreachable(b) {
			t.Errorf("block %%%s falsely unreachable", b.Name)
		}
	}
	iv := f.FindBlock("header").Instrs[0]
	if _, ok := r.ConstOf(body, iv); ok {
		t.Error("loop induction variable is not constant")
	}
}

// TestSCCPPropagation: constants flow through arithmetic and select chains.
func TestSCCPPropagation(t *testing.T) {
	f := llvm.NewFunction("prop", llvm.Void(), &llvm.Param{Name: "n", Ty: llvm.I64()})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	a := b.Mul(llvm.CI(llvm.I64(), 6), llvm.CI(llvm.I64(), 7)) // 42
	s := b.SDiv(a, llvm.CI(llvm.I64(), 2))                     // 21
	sel := b.Select(llvm.CI(llvm.I1(), 1), s, f.Params[0])     // 21
	mix := b.Add(sel, f.Params[0])                             // overdefined
	b.Ret(nil)

	r := SCCP(f)
	if v, ok := r.ConstOf(entry, sel); !ok || v != 21 {
		t.Errorf("select: got %d ok=%v, want 21", v, ok)
	}
	if _, ok := r.ConstOf(entry, mix); ok {
		t.Error("mixing in a parameter must go overdefined")
	}
}

package absint

import (
	"testing"

	"repro/internal/llvm"
)

func TestIntervalAlgebra(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", Range(1, 3).Add(Range(10, 20)), Range(11, 23)},
		{"sub", Range(1, 3).Sub(Range(10, 20)), Range(-19, -7)},
		{"mul-signs", Range(-2, 3).Mul(Range(-5, 4)), Range(-15, 12)},
		{"mul-inf", Interval{Lo: 0, Hi: posInf}.Mul(Const(2)), Interval{Lo: 0, Hi: posInf}},
		{"div-pos", Range(-7, 9).Div(Const(2)), Range(-3, 4)},
		{"div-neg", Range(4, 9).Div(Const(-2)), Range(-4, -2)},
		{"div-zero-span", Range(1, 2).Div(Range(-1, 1)), Top()},
		{"rem", Range(0, 100).Rem(Const(8)), Range(0, 7)},
		{"rem-neg", Range(-100, -1).Rem(Const(8)), Range(-7, 0)},
		{"union", Range(0, 2).Union(Range(5, 9)), Range(0, 9)},
		{"intersect", Range(0, 6).Intersect(Range(4, 9)), Range(4, 6)},
		{"intersect-empty", Range(0, 2).Intersect(Range(5, 9)), Bottom()},
		{"widen-hi", Range(0, 5).WidenFrom(Range(0, 3)), Interval{Lo: 0, Hi: posInf}},
		{"widen-lo", Range(-2, 3).WidenFrom(Range(0, 3)), Interval{Lo: negInf, Hi: 3}},
		{"widen-stable", Range(0, 3).WidenFrom(Range(0, 3)), Range(0, 3)},
		{"sat-overflow", Const(posInf - 1).Add(Const(5)), Interval{Lo: posInf, Hi: posInf}},
		{"empty-prop", Bottom().Add(Range(1, 2)), Bottom()},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
	if s := Range(0, 31).String(); s != "[0, 31]" {
		t.Errorf("String: %q", s)
	}
	if s := (Interval{Lo: negInf, Hi: 4}).String(); s != "[-inf, 4]" {
		t.Errorf("String: %q", s)
	}
}

// buildCountedLoop constructs the canonical loop shape both flows emit:
//
//	entry -> header{iv=phi(start,next); icmp pred iv, bound} -> body -> latch(next=iv+step) -> header
//
// with an f32 array GEP A[iv] in the body, and returns (function, gep, body).
func buildCountedLoop(t *testing.T, pred string, start, step, bound int64) (*llvm.Function, *llvm.Instr, *llvm.Block) {
	t.Helper()
	arr := llvm.ArrayOf(64, llvm.FloatT())
	f := llvm.NewFunction("loop", llvm.Void(), &llvm.Param{Name: "A", Ty: llvm.Ptr(arr)})
	entry := f.AddBlock("entry")
	header := f.AddBlock("header")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	b.Br(header)

	b.SetBlock(header)
	iv := b.Phi(llvm.I64())
	iv.Name = "iv"
	cmp := b.ICmp(pred, iv, llvm.CI(llvm.I64(), bound))
	b.CondBr(cmp, body, exit)

	b.SetBlock(body)
	gep := b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), iv)
	v := b.Load(llvm.FloatT(), gep)
	b.Store(v, gep)
	next := b.Add(iv, llvm.CI(llvm.I64(), step))
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(nil)

	iv.AddIncoming(llvm.CI(llvm.I64(), start), entry)
	iv.AddIncoming(next, body)
	return f, gep, body
}

func TestIntervalsCountedLoop(t *testing.T) {
	f, _, body := buildCountedLoop(t, "slt", 0, 1, 64)
	r := Intervals(f)
	iv := f.FindBlock("header").Instrs[0]
	if got := r.At(body, iv); !got.Equal(Range(0, 63)) {
		t.Errorf("iv in body: got %s, want [0, 63]", got)
	}
	exit := f.FindBlock("exit")
	if got := r.At(exit, iv); !got.Equal(Const(64)) {
		t.Errorf("iv at exit: got %s, want [64, 64]", got)
	}
}

func TestIntervalsDecrementingLoop(t *testing.T) {
	f, _, body := buildCountedLoop(t, "sgt", 63, -1, -1)
	r := Intervals(f)
	iv := f.FindBlock("header").Instrs[0]
	if got := r.At(body, iv); !got.Equal(Range(0, 63)) {
		t.Errorf("iv in body: got %s, want [0, 63]", got)
	}
}

func TestIntervalsUnsignedLoop(t *testing.T) {
	f, _, body := buildCountedLoop(t, "ult", 0, 2, 32)
	r := Intervals(f)
	iv := f.FindBlock("header").Instrs[0]
	if got := r.At(body, iv); !got.Equal(Range(0, 31)) {
		t.Errorf("iv in body: got %s, want [0, 31]", got)
	}
}

// TestIntervalsGuardRefinement: a branch guard i < 16 must narrow the value
// inside the guarded block even though the loop spans [0, 63].
func TestIntervalsGuardRefinement(t *testing.T) {
	f := llvm.NewFunction("guarded", llvm.Void())
	entry := f.AddBlock("entry")
	header := f.AddBlock("header")
	bodyTop := f.AddBlock("bodyTop")
	guarded := f.AddBlock("guarded")
	latch := f.AddBlock("latch")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	b.Br(header)
	b.SetBlock(header)
	iv := b.Phi(llvm.I64())
	cmp := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 64))
	b.CondBr(cmp, bodyTop, exit)
	b.SetBlock(bodyTop)
	guard := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 16))
	b.CondBr(guard, guarded, latch)
	b.SetBlock(guarded)
	b.Br(latch)
	b.SetBlock(latch)
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	iv.AddIncoming(next, latch)

	r := Intervals(f)
	if got := r.At(guarded, iv); !got.Equal(Range(0, 15)) {
		t.Errorf("guarded iv: got %s, want [0, 15]", got)
	}
	if got := r.At(bodyTop, iv); !got.Equal(Range(0, 63)) {
		t.Errorf("bodyTop iv: got %s, want [0, 63]", got)
	}
}

// TestIntervalsInfeasibleEdge: a constant-false condition makes its block
// unreachable to the analysis while staying CFG-reachable.
func TestIntervalsInfeasibleEdge(t *testing.T) {
	f := llvm.NewFunction("dead", llvm.Void())
	entry := f.AddBlock("entry")
	deadB := f.AddBlock("dead")
	tail := f.AddBlock("tail")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	cmp := b.ICmp("slt", llvm.CI(llvm.I64(), 5), llvm.CI(llvm.I64(), 3))
	b.CondBr(cmp, deadB, tail)
	b.SetBlock(deadB)
	b.Br(tail)
	b.SetBlock(tail)
	b.Ret(nil)

	r := Intervals(f)
	if !r.Unreachable(deadB) {
		t.Error("dead block should be unreachable to the interval analysis")
	}
	if r.Unreachable(tail) {
		t.Error("tail is reachable")
	}
}

// TestIntervalsNonAffine: `and iv, 15` is not affine in the induction
// variable but is still bounded — the case the interval analysis adds over
// the old induction-only reasoning.
func TestIntervalsNonAffine(t *testing.T) {
	f, _, body := buildCountedLoop(t, "slt", 0, 1, 64)
	// Append masked = and iv, 15 to the body.
	iv := f.FindBlock("header").Instrs[0]
	b := llvm.NewBuilder(f)
	masked := &llvm.Instr{Op: llvm.OpAnd, Ty: llvm.I64(), Args: []llvm.Value{iv, llvm.CI(llvm.I64(), 15)}}
	masked.Name = b.NewName()
	body.InsertBefore(masked, body.Terminator())

	r := Intervals(f)
	if got := r.At(body, masked); !got.Equal(Range(0, 15)) {
		t.Errorf("and-masked: got %s, want [0, 15]", got)
	}
}

package absint

import (
	"fmt"
	"math"

	"repro/internal/llvm"
)

// The extreme int64 values act as the -inf/+inf sentinels of unbounded
// interval ends; saturating arithmetic keeps them absorbing.
const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Interval is a signed-integer interval [Lo, Hi] with negInf/posInf
// sentinels for unbounded ends, or the empty (bottom) element. Arithmetic
// saturates: the analysis assumes index/integer arithmetic does not wrap,
// the same assumption the affine induction reasoning it replaces made (the
// MLIR lowering computes addresses on promoted i64 indices, where the array
// extents HLS supports cannot overflow).
type Interval struct {
	Lo, Hi int64
	// Empty marks the bottom element; Lo/Hi are then meaningless.
	Empty bool
}

// Top returns the unbounded interval.
func Top() Interval { return Interval{Lo: negInf, Hi: posInf} }

// Bottom returns the empty interval.
func Bottom() Interval { return Interval{Empty: true} }

// Const returns the singleton interval {c}.
func Const(c int64) Interval { return Interval{Lo: c, Hi: c} }

// Range returns [lo, hi], or the empty interval when lo > hi.
func Range(lo, hi int64) Interval {
	if lo > hi {
		return Bottom()
	}
	return Interval{Lo: lo, Hi: hi}
}

// typeTop returns the full range of an integer type: the analysis never
// claims more than the type can represent, which is what gives shift-width
// and zext reasoning their baseline.
func typeTop(ty *llvm.Type) Interval {
	if ty == nil || !ty.IsInt() {
		return Top()
	}
	switch bits := ty.Bits; {
	case bits == 1:
		return Range(0, 1) // i1 holds icmp results: 0 or 1
	case bits >= 64 || bits <= 0:
		return Top()
	default:
		return Range(-(int64(1) << (bits - 1)), int64(1)<<(bits-1)-1)
	}
}

// IsTop reports whether the interval is unbounded on both ends.
func (iv Interval) IsTop() bool { return !iv.Empty && iv.Lo == negInf && iv.Hi == posInf }

// Bounded reports whether both ends are finite (the precondition for every
// lint check that fires on an interval: unbounded means "unknown", and
// unknown must stay silent).
func (iv Interval) Bounded() bool { return !iv.Empty && iv.Lo != negInf && iv.Hi != posInf }

// ConstVal returns the single value of a singleton interval.
func (iv Interval) ConstVal() (int64, bool) {
	if !iv.Empty && iv.Lo == iv.Hi && iv.Lo != negInf && iv.Lo != posInf {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether c may be a value of the interval.
func (iv Interval) Contains(c int64) bool { return !iv.Empty && iv.Lo <= c && c <= iv.Hi }

// Union returns the least interval covering both.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty {
		return o
	}
	if o.Empty {
		return iv
	}
	return Interval{Lo: minI64(iv.Lo, o.Lo), Hi: maxI64(iv.Hi, o.Hi)}
}

// Intersect returns the meet of both intervals.
func (iv Interval) Intersect(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	return Range(maxI64(iv.Lo, o.Lo), minI64(iv.Hi, o.Hi))
}

// WidenFrom extrapolates iv against the previous iterate: an end that grew
// jumps to its infinity, so ascending chains stabilize in one more step.
func (iv Interval) WidenFrom(prev Interval) Interval {
	if prev.Empty {
		return iv
	}
	if iv.Empty {
		return prev
	}
	w := prev
	if iv.Lo < prev.Lo {
		w.Lo = negInf
	}
	if iv.Hi > prev.Hi {
		w.Hi = posInf
	}
	return w
}

// Equal reports interval equality.
func (iv Interval) Equal(o Interval) bool {
	if iv.Empty || o.Empty {
		return iv.Empty == o.Empty
	}
	return iv.Lo == o.Lo && iv.Hi == o.Hi
}

// String renders the interval for diagnostics and -explain output.
func (iv Interval) String() string {
	if iv.Empty {
		return "empty"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != negInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != posInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Saturating bound arithmetic. Infinite operands absorb; finite overflow
// saturates toward the overflow direction.

func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if b > 0 && s < a {
		return posInf
	}
	if b < 0 && s > a {
		return negInf
	}
	return s
}

func satNeg(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -a
}

func satSub(a, b int64) int64 { return satAdd(a, satNeg(b)) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	pos := (a > 0) == (b > 0)
	if a == negInf || a == posInf || b == negInf || b == posInf {
		if pos {
			return posInf
		}
		return negInf
	}
	p := a * b
	if p/b != a || (pos && p < 0) || (!pos && p > 0) {
		if pos {
			return posInf
		}
		return negInf
	}
	return p
}

// satDiv truncates toward zero; d must be nonzero. An infinite divisor
// yields 0 for finite numerators (the limit is attained arbitrarily closely
// and 0 always lies between the finite corners).
func satDiv(a, d int64) int64 {
	if d == negInf || d == posInf {
		if a == negInf || a == posInf {
			return 0
		}
		return 0
	}
	switch a {
	case negInf:
		if d > 0 {
			return negInf
		}
		return posInf
	case posInf:
		if d > 0 {
			return posInf
		}
		return negInf
	}
	return a / d
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	return Interval{Lo: satAdd(iv.Lo, o.Lo), Hi: satAdd(iv.Hi, o.Hi)}
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	return Interval{Lo: satSub(iv.Lo, o.Hi), Hi: satSub(iv.Hi, o.Lo)}
}

// Mul returns the interval product (corner evaluation; x*y is monotone in
// each argument, so extremes lie at corners).
func (iv Interval) Mul(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	return cornerHull(
		satMul(iv.Lo, o.Lo), satMul(iv.Lo, o.Hi),
		satMul(iv.Hi, o.Lo), satMul(iv.Hi, o.Hi))
}

// Div returns the truncated quotient interval; a divisor range containing
// zero yields Top (division by zero is flagged separately by div-by-zero).
func (iv Interval) Div(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	if o.Contains(0) {
		return Top()
	}
	return cornerHull(
		satDiv(iv.Lo, o.Lo), satDiv(iv.Lo, o.Hi),
		satDiv(iv.Hi, o.Lo), satDiv(iv.Hi, o.Hi))
}

// Rem returns the truncated remainder interval (sign follows the dividend).
func (iv Interval) Rem(o Interval) Interval {
	if iv.Empty || o.Empty {
		return Bottom()
	}
	if o.Contains(0) || !o.Bounded() {
		// Remainder magnitude is still below the dividend magnitude, but
		// division by zero poisons the result; stay conservative by sign.
		if iv.Lo >= 0 {
			return Interval{Lo: 0, Hi: posInf}
		}
		return Top()
	}
	m := maxI64(absI64(o.Lo), absI64(o.Hi)) - 1
	switch {
	case iv.Lo >= 0:
		hi := m
		if iv.Hi < hi {
			hi = iv.Hi
		}
		return Range(0, hi)
	case iv.Hi <= 0:
		return Range(-m, 0)
	default:
		return Range(-m, m)
	}
}

func cornerHull(vals ...int64) Interval {
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = minI64(lo, v), maxI64(hi, v)
	}
	return Interval{Lo: lo, Hi: hi}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func absI64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

package absint

import (
	"repro/internal/llvm"
)

// constVal is the flat constant lattice: a known integer constant or
// overdefined. Absence from the environment means "not yet known" (bottom).
type constVal struct {
	over bool
	val  int64
}

// cenv maps SSA values to constant-lattice elements.
type cenv struct {
	m map[llvm.Value]constVal
}

func newCEnv() *cenv { return &cenv{m: map[llvm.Value]constVal{}} }

func (e *cenv) clone() *cenv {
	n := &cenv{m: make(map[llvm.Value]constVal, len(e.m))}
	for k, v := range e.m {
		n.m[k] = v
	}
	return n
}

// get evaluates v: exact for integer constants, overdefined for any other
// untracked value.
func (e *cenv) get(v llvm.Value) constVal {
	if c, ok := v.(*llvm.ConstInt); ok {
		return constVal{val: c.Val}
	}
	if cv, ok := e.m[v]; ok {
		return cv
	}
	return constVal{over: true}
}

// sccpDomain is the sparse-conditional-constant-propagation client: the
// finite constant lattice rides the same solver, and the solver's edge
// feasibility (constant branch conditions kill edges) provides the
// "sparse conditional" part. Its chief product here is the unreachable
// block set; constant results also feed -explain output.
type sccpDomain struct{}

func (sccpDomain) Entry(f *llvm.Function) *cenv { return newCEnv() }

func (sccpDomain) Join(a, b *cenv) *cenv {
	out := a.clone()
	for k, vb := range b.m {
		va, ok := out.m[k]
		switch {
		case !ok:
			out.m[k] = vb
		case va.over || vb.over || va.val != vb.val:
			out.m[k] = constVal{over: true}
		}
	}
	return out
}

// Widen is Join: the lattice is finite (height 2 per value).
func (d sccpDomain) Widen(_ *llvm.Block, prev, next *cenv) *cenv { return d.Join(prev, next) }

func (sccpDomain) Equal(a, b *cenv) bool {
	if len(a.m) != len(b.m) {
		return false
	}
	for k, va := range a.m {
		vb, ok := b.m[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

func (sccpDomain) Transfer(b *llvm.Block, in *cenv) *cenv {
	out := in.clone()
	for _, ins := range b.Instrs {
		if ins.Op == llvm.OpPhi {
			continue // bound per-edge by FlowEdge
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		out.m[ins] = foldInstr(out, ins)
	}
	return out
}

// foldInstr constant-folds one integer instruction.
func foldInstr(env *cenv, in *llvm.Instr) constVal {
	arg := func(i int) (int64, bool) {
		cv := env.get(in.Args[i])
		return cv.val, !cv.over
	}
	bin := func(f func(a, b int64) (int64, bool)) constVal {
		a, oka := arg(0)
		b, okb := arg(1)
		if !oka || !okb {
			return constVal{over: true}
		}
		if v, ok := f(a, b); ok {
			return constVal{val: v}
		}
		return constVal{over: true}
	}
	ok2 := func(v int64) (int64, bool) { return v, true }
	switch in.Op {
	case llvm.OpAdd:
		return bin(func(a, b int64) (int64, bool) { return ok2(a + b) })
	case llvm.OpSub:
		return bin(func(a, b int64) (int64, bool) { return ok2(a - b) })
	case llvm.OpMul:
		return bin(func(a, b int64) (int64, bool) { return ok2(a * b) })
	case llvm.OpSDiv:
		return bin(func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a / b, true
		})
	case llvm.OpSRem:
		return bin(func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		})
	case llvm.OpAnd:
		return bin(func(a, b int64) (int64, bool) { return ok2(a & b) })
	case llvm.OpOr:
		return bin(func(a, b int64) (int64, bool) { return ok2(a | b) })
	case llvm.OpXor:
		return bin(func(a, b int64) (int64, bool) { return ok2(a ^ b) })
	case llvm.OpShl:
		return bin(func(a, b int64) (int64, bool) {
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		})
	case llvm.OpLShr:
		return bin(func(a, b int64) (int64, bool) {
			if b < 0 || b > 63 {
				return 0, false
			}
			// Logical shift of the type-width unsigned value, matching the
			// interpreter: drop the sign-extended high bits before shifting.
			u := uint64(a)
			if t := in.Ty; t != nil && t.IsInt() && t.Bits < 64 {
				u &= (uint64(1) << uint(t.Bits)) - 1
			}
			v := int64(u >> uint(b))
			// Re-enter the sign-extended representation (lshr by 0 of a
			// negative value keeps the sign bit set in the type's width).
			if t := in.Ty; t != nil && t.IsInt() && t.Bits < 64 && t.Bits > 0 {
				sh := uint(64 - t.Bits)
				v = v << sh >> sh
			}
			return v, true
		})
	case llvm.OpAShr:
		return bin(func(a, b int64) (int64, bool) {
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		})
	case llvm.OpSExt, llvm.OpZExt, llvm.OpTrunc:
		// Width changes on the nonnegative small constants these modules
		// produce are the identity; anything else goes overdefined.
		cv := env.get(in.Args[0])
		if cv.over {
			return cv
		}
		if in.Op == llvm.OpSExt || cv.val >= 0 {
			return cv
		}
		return constVal{over: true}
	case llvm.OpICmp:
		a, oka := arg(0)
		b, okb := arg(1)
		if !oka || !okb {
			return constVal{over: true}
		}
		if v, ok := foldICmp(a, b, in.Pred); ok {
			return constVal{val: v}
		}
		return constVal{over: true}
	case llvm.OpSelect:
		c := env.get(in.Args[0])
		if !c.over {
			if c.val != 0 {
				return env.get(in.Args[1])
			}
			return env.get(in.Args[2])
		}
		t, f := env.get(in.Args[1]), env.get(in.Args[2])
		if !t.over && !f.over && t.val == f.val {
			return t
		}
		return constVal{over: true}
	}
	return constVal{over: true}
}

func foldICmp(a, b int64, pred string) (int64, bool) {
	toI := func(v bool) (int64, bool) {
		if v {
			return 1, true
		}
		return 0, true
	}
	switch pred {
	case "eq":
		return toI(a == b)
	case "ne":
		return toI(a != b)
	case "slt":
		return toI(a < b)
	case "sle":
		return toI(a <= b)
	case "sgt":
		return toI(a > b)
	case "sge":
		return toI(a >= b)
	case "ult", "ule", "ugt", "uge":
		if a >= 0 && b >= 0 { // signed and unsigned orders agree
			switch pred {
			case "ult":
				return toI(a < b)
			case "ule":
				return toI(a <= b)
			case "ugt":
				return toI(a > b)
			case "uge":
				return toI(a >= b)
			}
		}
	}
	return 0, false
}

// FlowEdge kills edges whose constant branch condition picks the other arm
// and binds the target's phis per edge.
func (sccpDomain) FlowEdge(from, to *llvm.Block, out *cenv) (*cenv, bool) {
	env := out.clone()
	term := from.Terminator()
	if term != nil && term.Op == llvm.OpCondBr && len(term.Blocks) == 2 && term.Blocks[0] != term.Blocks[1] {
		takenTrue := term.Blocks[0] == to
		if cv := env.get(term.Args[0]); !cv.over && (cv.val != 0) != takenTrue {
			return nil, false
		}
	}
	for _, ins := range to.Instrs {
		if ins.Op != llvm.OpPhi {
			break
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		for i, blk := range ins.Blocks {
			if blk == from && i < len(ins.Args) {
				env.m[ins] = env.get(ins.Args[i])
			}
		}
	}
	return env, true
}

// SCCPResult exposes one function's sparse conditional constant propagation.
type SCCPResult struct {
	res *Result[*cenv]
}

// SCCP runs sparse conditional constant propagation over f.
func SCCP(f *llvm.Function) *SCCPResult {
	return &SCCPResult{res: Solve[*cenv](f, sccpDomain{})}
}

// Unreachable reports whether b is CFG-reachable but provably never
// executed: every path to it requires a branch to go against its constant
// condition.
func (r *SCCPResult) Unreachable(b *llvm.Block) bool {
	return r.res.CFG.Reachable(b) && !r.res.Reached(b)
}

// ConstOf returns the constant value of v at b's exit, when proven.
func (r *SCCPResult) ConstOf(b *llvm.Block, v llvm.Value) (int64, bool) {
	if !r.res.Reached(b) {
		return 0, false
	}
	env := r.res.Out[b]
	if env == nil {
		return 0, false
	}
	cv := env.get(v)
	return cv.val, !cv.over
}

// BranchConst returns the proven constant of b's conditional-branch
// condition, for explaining why a successor is unreachable.
func (r *SCCPResult) BranchConst(b *llvm.Block) (int64, bool) {
	term := b.Terminator()
	if term == nil || term.Op != llvm.OpCondBr {
		return 0, false
	}
	return r.ConstOf(b, term.Args[0])
}

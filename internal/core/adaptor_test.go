package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
	"repro/internal/translate"
)

func buildGemm(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	_, args := m.AddFunc("gemm", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("gemm")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				s := b.AddF(c, b.MulF(a, x))
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

// translateGemm builds, lowers and translates the gemm kernel.
func translateGemm(t *testing.T, n int64, withTop bool) *llvm.Module {
	t.Helper()
	m := buildGemm(n)
	if withTop {
		if err := passes.MarkTop("gemm").Run(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := translate.Translate(m, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

func TestAdaptCollapsesDescriptors(t *testing.T) {
	lm := translateGemm(t, 4, true)
	rep, err := Adapt(lm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := lm.FindFunc("gemm")
	if len(f.Params) != 3 {
		t.Fatalf("want 3 array params after adaptation, got %d", len(f.Params))
	}
	for i, p := range f.Params {
		if !p.Ty.IsPtr() || p.Ty.Elem == nil || !p.Ty.Elem.IsArray() {
			t.Errorf("param %d should be a shaped array pointer, got %s", i, p.Ty.TypedString())
		}
		if p.Ty.Elem.N != 16 {
			t.Errorf("param %d array length = %d, want 16", i, p.Ty.Elem.N)
		}
	}
	if rep.CountByKind(FixDescriptor) == 0 {
		t.Error("descriptor fixes not recorded")
	}
	if lm.Flavor != llvm.FlavorHLS {
		t.Error("module flavor not switched to HLS")
	}
	// GEPs now step through the array type.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpGEP && !in.SrcElem.IsArray() {
				t.Errorf("unadapted gep remains (src elem %s)", in.SrcElem)
			}
		}
	}
	// Typed pointers in print.
	txt := lm.Print()
	if !strings.Contains(txt, "[16 x double]*") {
		t.Errorf("HLS module should print typed array pointers:\n%s", txt)
	}
	if strings.Contains(txt, " ptr ") {
		t.Errorf("HLS module should not print opaque pointers:\n%s", txt)
	}
}

func TestAdaptPreservesSemantics(t *testing.T) {
	const n = 5
	// Reference via MLIR interpreter.
	refMod := buildGemm(n)
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	A, B, C := mlir.NewMemBuf(ty), mlir.NewMemBuf(ty), mlir.NewMemBuf(ty)
	r := rand.New(rand.NewSource(21))
	for i := range A.F {
		A.F[i] = r.Float64()
		B.F[i] = r.Float64()
	}
	if err := refMod.Interpret("gemm", A, B, C); err != nil {
		t.Fatal(err)
	}

	lm := translateGemm(t, n, true)
	if _, err := Adapt(lm, Options{}); err != nil {
		t.Fatal(err)
	}
	mk := func(src []float64) *interp.Mem {
		m := interp.NewMem(int64(len(src)) * 8)
		for i, v := range src {
			m.SetFloat64(i, v)
		}
		return m
	}
	r2 := rand.New(rand.NewSource(21))
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := range a {
		a[i] = r2.Float64()
		bb[i] = r2.Float64()
	}
	ma, mb, mc := mk(a), mk(bb), mk(make([]float64, n*n))
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "gemm",
		interp.PtrArg(ma, 0), interp.PtrArg(mb, 0), interp.PtrArg(mc, 0)); err != nil {
		t.Fatalf("adapted IR failed to run: %v", err)
	}
	got := mc.Float64Slice()
	for i := range got {
		d := got[i] - C.F[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("adapted IR wrong at %d: %g vs %g", i, got[i], C.F[i])
		}
	}
}

func TestAdaptMallocAndLifetime(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("scratch", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("scratch")))
	tmp := b.Alloc(mlir.MemRef([]int64{8}, mlir.F32()))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(v, tmp, i)
	})
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(tmp, i)
		s := b.AddF(v, v)
		b.AffineStore(s, args[0], i)
	})
	b.Return()
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := translate.Translate(m, translate.Options{EmitLifetimeMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Adapt(lm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	txt := lm.Print()
	if strings.Contains(txt, "@malloc") || strings.Contains(txt, "lifetime") {
		t.Errorf("malloc/lifetime survived adaptation:\n%s", txt)
	}
	if !strings.Contains(txt, "alloca [8 x float]") {
		t.Errorf("expected staticized alloca:\n%s", txt)
	}
	if rep.CountByKind(FixMalloc) == 0 || rep.CountByKind(FixIntrinsic) == 0 {
		t.Errorf("fix report incomplete: %s", rep)
	}
	// Execute: out[i] = 2*in[i].
	mem := interp.NewMem(32)
	for i := 0; i < 8; i++ {
		mem.SetFloat32(i, float32(i))
	}
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "scratch", interp.PtrArg(mem, 0)); err != nil {
		t.Fatal(err)
	}
	out := mem.Float32Slice()
	for i := 0; i < 8; i++ {
		if out[i] != float32(2*i) {
			t.Errorf("scratch[%d] = %g, want %d", i, out[i], 2*i)
		}
	}
}

func TestAdaptIntrinsicRenames(t *testing.T) {
	lm := llvm.NewModule("intr")
	f := llvm.NewFunction("k", llvm.Void(), &llvm.Param{Name: "x", Ty: llvm.DoubleT()})
	lm.AddFunc(f)
	blk := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(blk)
	s := b.Call("llvm.sqrt.f64", llvm.DoubleT(), f.Params[0])
	e := b.Call("llvm.exp.f64", llvm.DoubleT(), s)
	fma := b.Call("llvm.fmuladd.f64", llvm.DoubleT(), e, e, e)
	_ = fma
	b.Ret(nil)
	if _, err := Adapt(lm, Options{}); err != nil {
		t.Fatal(err)
	}
	txt := lm.Print()
	for _, want := range []string{"@sqrt(", "@exp("} {
		if !strings.Contains(txt, want) {
			t.Errorf("missing legalized call %s:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "fmuladd") {
		t.Error("fmuladd not expanded")
	}
	if !strings.Contains(txt, "fmul double") || !strings.Contains(txt, "fadd double") {
		t.Error("fmuladd should expand to fmul+fadd")
	}
}

func TestAdaptSingleExit(t *testing.T) {
	lm := llvm.NewModule("exits")
	f := llvm.NewFunction("two", llvm.Void(), &llvm.Param{Name: "c", Ty: llvm.I1()})
	lm.AddFunc(f)
	entry := f.AddBlock("entry")
	a := f.AddBlock("a")
	bblk := f.AddBlock("b")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.CondBr(f.Params[0], a, bblk)
	b.SetBlock(a)
	b.Ret(nil)
	b.SetBlock(bblk)
	b.Ret(nil)
	rep, err := Adapt(lm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rets := 0
	for _, blk := range f.Blocks {
		if t := blk.Terminator(); t != nil && t.Op == llvm.OpRet {
			rets++
		}
	}
	if rets != 1 {
		t.Errorf("want single exit, got %d rets", rets)
	}
	if rep.CountByKind(FixExit) == 0 {
		t.Error("exit merge not recorded")
	}
}

func TestAdaptInterfaceAnnotations(t *testing.T) {
	lm := translateGemm(t, 4, true)
	// Simulate a partition directive carried from MLIR.
	f := lm.FindFunc("gemm")
	f.SetAttr("hls.array_partition.arg0", `["cyclic", 2, 1]`)
	if _, err := Adapt(lm, Options{}); err != nil {
		t.Fatal(err)
	}
	if f.Attrs["hls.array_partition.arg0"] != "cyclic,2,1" {
		t.Errorf("partition attr not normalized: %q", f.Attrs["hls.array_partition.arg0"])
	}
	if f.Attrs["hls.top"] != "1" {
		t.Error("top attribute missing")
	}
	foundMem := false
	for _, p := range f.Params {
		for _, a := range p.Attrs {
			if strings.Contains(a, "ap_memory") {
				foundMem = true
			}
		}
	}
	if !foundMem {
		t.Error("array params should get ap_memory interface")
	}
}

func TestAdaptGEPCanonicalize(t *testing.T) {
	lm := llvm.NewModule("gep")
	arr := llvm.ArrayOf(16, llvm.FloatT())
	f := llvm.NewFunction("g", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(arr)}, &llvm.Param{Name: "i", Ty: llvm.I64()})
	lm.AddFunc(f)
	blk := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(blk)
	// gep [16xf], p, 0, i ; then gep f, that, 3 — should merge.
	g1 := b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), f.Params[1])
	g2 := b.GEP(llvm.FloatT(), g1, llvm.CI(llvm.I64(), 3))
	v := b.Load(llvm.FloatT(), g2)
	b.Store(v, g2)
	b.Ret(nil)
	rep, err := Adapt(lm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountByKind(FixGEP) == 0 {
		t.Error("gep canonicalization not recorded")
	}
	geps := 0
	for _, in := range blk.Instrs {
		if in.Op == llvm.OpGEP {
			geps++
			if !in.SrcElem.IsArray() {
				t.Error("merged gep should step through the array type")
			}
		}
	}
	if geps != 1 {
		t.Errorf("want 1 gep after merging, got %d", geps)
	}
}

func TestReportString(t *testing.T) {
	lm := translateGemm(t, 4, true)
	rep, err := Adapt(lm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, string(FixDescriptor)) {
		t.Errorf("report missing descriptor line:\n%s", s)
	}
	if rep.Total() == 0 {
		t.Error("empty report for a full adaptation")
	}
}

// Package core implements the paper's contribution: the MLIR HLS adaptor for
// LLVM IR. It rewrites the LLVM IR produced by mlir-translate (modern
// dialect: opaque pointers, descriptor ABI, current intrinsics) into
// "HLS-readable IR" — the restricted LLVM dialect the HLS toolchain's older
// in-tool LLVM accepts — while carrying MLIR-level optimization directives
// through as HLS loop metadata and interface annotations.
//
// The adaptor is organized as a fixed pipeline of IR fixes, each of which
// records what it changed so the flow can report the size of the version gap
// it closed (the paper's Table 2):
//
//  1. DescriptorToArray — collapse each expanded memref descriptor argument
//     group into a single statically-shaped array pointer parameter and
//     rewrite linearized address arithmetic onto it.
//  2. MallocToAlloca — turn constant-size heap allocation (malloc/free) into
//     entry-block static allocas, which HLS maps onto BRAM.
//  3. IntrinsicLegalize — replace modern intrinsics (llvm.exp.*,
//     llvm.fmuladd.*, llvm.memcpy/memset, lifetime markers) with forms the
//     HLS LLVM knows (libm calls, mul+add, explicit copy loops, nothing).
//  4. GEPCanonicalize — fold trivial pointer arithmetic (zero-index GEPs,
//     GEP-of-GEP chains) into the canonical single-GEP form.
//  5. SingleExit — merge multiple returns into one exit block.
//  6. InterfaceAnnotate — attach HLS interface/partition metadata to the
//     top function's ports from the directives that traveled with the IR.
//  7. Retype — switch the module to the typed-pointer HLS flavor.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llvm"
)

// FixKind classifies an adaptor rewrite.
type FixKind string

// Fix kinds, in pipeline order.
const (
	FixDescriptor FixKind = "descriptor-to-array"
	FixMalloc     FixKind = "malloc-to-alloca"
	FixIntrinsic  FixKind = "intrinsic-legalize"
	FixGEP        FixKind = "gep-canonicalize"
	FixExit       FixKind = "single-exit"
	FixInterface  FixKind = "interface-annotate"
	FixRetype     FixKind = "retype-pointers"
)

// Fix records one class of rewrite applied to one function.
type Fix struct {
	Kind   FixKind
	Func   string
	Detail string
	Count  int
}

// Report summarizes everything the adaptor changed.
type Report struct {
	Fixes []Fix
}

func (r *Report) add(kind FixKind, fn, detail string, count int) {
	if count == 0 {
		return
	}
	r.Fixes = append(r.Fixes, Fix{Kind: kind, Func: fn, Detail: detail, Count: count})
}

// Total returns the total number of individual rewrites.
func (r *Report) Total() int {
	n := 0
	for _, f := range r.Fixes {
		n += f.Count
	}
	return n
}

// CountByKind returns the rewrite count for one fix kind.
func (r *Report) CountByKind(kind FixKind) int {
	n := 0
	for _, f := range r.Fixes {
		if f.Kind == kind {
			n += f.Count
		}
	}
	return n
}

// String renders the report as a table.
func (r *Report) String() string {
	var sb strings.Builder
	byKind := map[FixKind][]Fix{}
	var kinds []string
	for _, f := range r.Fixes {
		if _, ok := byKind[f.Kind]; !ok {
			kinds = append(kinds, string(f.Kind))
		}
		byKind[f.Kind] = append(byKind[f.Kind], f)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		total := 0
		for _, f := range byKind[FixKind(k)] {
			total += f.Count
		}
		fmt.Fprintf(&sb, "%-22s %4d\n", k, total)
	}
	return sb.String()
}

// Options configures the adaptor.
type Options struct {
	// TopFunc overrides the top-function name; empty selects the function
	// carrying the hls.top attribute (or the only function).
	TopFunc string
}

// Adapt rewrites m in place into HLS-readable IR and reports the fixes.
func Adapt(m *llvm.Module, opts Options) (*Report, error) {
	rep := &Report{}
	top := findTop(m, opts.TopFunc)
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		if err := descriptorToArray(f, rep); err != nil {
			return nil, fmt.Errorf("adaptor: @%s: %w", f.Name, err)
		}
		if err := mallocToAlloca(f, rep); err != nil {
			return nil, fmt.Errorf("adaptor: @%s: %w", f.Name, err)
		}
		if err := intrinsicLegalize(f, rep); err != nil {
			return nil, fmt.Errorf("adaptor: @%s: %w", f.Name, err)
		}
		gepCanonicalize(f, rep)
		singleExit(f, rep)
	}
	if top != nil {
		interfaceAnnotate(top, rep)
	}
	if m.Flavor != llvm.FlavorHLS {
		m.Flavor = llvm.FlavorHLS
		rep.add(FixRetype, "", "switched module to typed-pointer HLS dialect", 1)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("adaptor produced invalid IR: %w", err)
	}
	return rep, nil
}

func findTop(m *llvm.Module, name string) *llvm.Function {
	if name != "" {
		return m.FindFunc(name)
	}
	for _, f := range m.Funcs {
		if _, ok := f.Attrs["hls.top"]; ok {
			return f
		}
	}
	if len(m.Funcs) == 1 {
		return m.Funcs[0]
	}
	return nil
}

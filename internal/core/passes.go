package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/llvm"
)

// memrefArgAttrPrefix matches translate.MemRefArgAttr without importing the
// package (the adaptor consumes IR, not the translator).
const memrefArgAttrPrefix = "memref.arg"

// decodeShape parses "4x4xf64" into dims and the LLVM element type.
func decodeShape(s string) (dims []int64, elem *llvm.Type, err error) {
	parts := strings.Split(s, "x")
	if len(parts) < 1 {
		return nil, nil, fmt.Errorf("bad shape %q", s)
	}
	switch parts[len(parts)-1] {
	case "f32":
		elem = llvm.FloatT()
	case "f64":
		elem = llvm.DoubleT()
	case "i32":
		elem = llvm.I32()
	case "i64", "index":
		elem = llvm.I64()
	case "i8":
		elem = llvm.I8()
	default:
		return nil, nil, fmt.Errorf("bad element in shape %q", s)
	}
	for _, d := range parts[:len(parts)-1] {
		n, err := strconv.ParseInt(d, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad dim in shape %q", s)
		}
		dims = append(dims, n)
	}
	return dims, elem, nil
}

// descriptorToArray collapses expanded memref descriptor parameter groups
// into single statically-shaped array pointers and retargets the address
// arithmetic. This is the fix that makes BRAM inference possible at all:
// without a shaped array parameter the HLS memory mapper has nothing to map.
func descriptorToArray(f *llvm.Function, rep *Report) error {
	type group struct {
		argIdx   int
		start    int // index into f.Params
		rank     int
		dims     []int64
		elem     *llvm.Type
		numElems int64
	}
	var groups []group

	// Identify groups by walking params against the recorded memref attrs.
	pi := 0
	argIdx := 0
	for pi < len(f.Params) {
		shape, ok := f.Attrs[fmt.Sprintf("%s%d", memrefArgAttrPrefix, argIdx)]
		if !ok {
			pi++
			argIdx++
			continue
		}
		dims, elem, err := decodeShape(shape)
		if err != nil {
			return err
		}
		rank := len(dims)
		n := int64(1)
		for _, d := range dims {
			n *= d
		}
		groups = append(groups, group{argIdx: argIdx, start: pi, rank: rank,
			dims: dims, elem: elem, numElems: n})
		pi += 3 + 2*rank
		argIdx++
	}
	if len(groups) == 0 {
		return nil
	}

	var newParams []*llvm.Param
	gi := 0
	gepsRewritten := 0
	for i := 0; i < len(f.Params); {
		if gi < len(groups) && groups[gi].start == i {
			g := groups[gi]
			arrTy := llvm.ArrayOf(g.numElems, g.elem)
			np := &llvm.Param{Name: fmt.Sprintf("arg%d", g.argIdx), Ty: llvm.Ptr(arrTy)}
			newParams = append(newParams, np)

			base := f.Params[i]
			aligned := f.Params[i+1]
			offset := f.Params[i+2]
			// Retarget every GEP on the aligned pointer to the shaped param.
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == llvm.OpGEP && (in.Args[0] == aligned || in.Args[0] == base) {
						lin := in.Args[1]
						in.SrcElem = arrTy
						in.Args = []llvm.Value{np, llvm.CI(llvm.I64(), 0), lin}
						in.Ty = llvm.Ptr(g.elem)
						gepsRewritten++
					}
				}
			}
			// Any remaining direct uses of the descriptor params become
			// constants (offset 0, static sizes/strides) or the new param.
			f.ReplaceAllUses(base, np)
			f.ReplaceAllUses(aligned, np)
			f.ReplaceAllUses(offset, llvm.CI(llvm.I64(), 0))
			strides := make([]int64, g.rank)
			s := int64(1)
			for d := g.rank - 1; d >= 0; d-- {
				strides[d] = s
				s *= g.dims[d]
			}
			for d := 0; d < g.rank; d++ {
				f.ReplaceAllUses(f.Params[i+3+d], llvm.CI(llvm.I64(), g.dims[d]))
				f.ReplaceAllUses(f.Params[i+3+g.rank+d], llvm.CI(llvm.I64(), strides[d]))
			}
			// Record the shape for the interface pass.
			shapeStr := make([]string, g.rank)
			for d, dim := range g.dims {
				shapeStr[d] = fmt.Sprintf("%d", dim)
			}
			f.SetAttr(fmt.Sprintf("hls.array.arg%d", g.argIdx), strings.Join(shapeStr, "x"))
			delete(f.Attrs, fmt.Sprintf("%s%d", memrefArgAttrPrefix, g.argIdx))

			i += 3 + 2*g.rank
			gi++
			continue
		}
		newParams = append(newParams, f.Params[i])
		i++
	}
	rep.add(FixDescriptor, f.Name,
		fmt.Sprintf("collapsed %d descriptor groups (%d params -> %d), rewrote %d geps",
			len(groups), len(f.Params), len(newParams), gepsRewritten),
		len(groups)+gepsRewritten)
	f.Params = newParams
	return nil
}

// mallocToAlloca converts constant-size malloc calls into entry-block static
// allocas and deletes the matching frees. HLS tools reject dynamic
// allocation outright.
func mallocToAlloca(f *llvm.Function, rep *Report) error {
	entry := f.Entry()
	if entry == nil {
		return nil
	}
	count := 0
	for _, blk := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), blk.Instrs...)
		for _, in := range instrs {
			if in.Op != llvm.OpCall || in.Callee != "malloc" {
				continue
			}
			size, ok := in.Args[0].(*llvm.ConstInt)
			if !ok {
				return fmt.Errorf("dynamic malloc size cannot be staticized")
			}
			elem := llvm.I8()
			if in.Ty.IsPtr() && in.Ty.Elem != nil {
				elem = in.Ty.Elem
			}
			n := size.Val / elem.SizeBytes()
			arrTy := llvm.ArrayOf(n, elem)
			alloca := &llvm.Instr{Op: llvm.OpAlloca, Name: in.Name + "_buf",
				Ty: llvm.Ptr(arrTy), SrcElem: arrTy}
			decay := &llvm.Instr{Op: llvm.OpGEP, Name: in.Name + "_decay",
				Ty: llvm.Ptr(elem), SrcElem: arrTy,
				Args: []llvm.Value{alloca, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0)}}
			// Static allocas belong at the top of the entry block.
			first := entry.Instrs[0]
			entry.InsertBefore(alloca, first)
			entry.InsertBefore(decay, first)
			f.ReplaceAllUses(in, decay)
			blk.Remove(in)
			count++
		}
	}
	// Delete frees (their pointees are now stack storage).
	freed := 0
	for _, blk := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), blk.Instrs...)
		for _, in := range instrs {
			if in.Op == llvm.OpCall && in.Callee == "free" {
				blk.Remove(in)
				freed++
			}
		}
	}
	rep.add(FixMalloc, f.Name,
		fmt.Sprintf("staticized %d mallocs, removed %d frees", count, freed),
		count+freed)
	return nil
}

// intrinsicLegalize rewrites modern intrinsics into forms the HLS LLVM
// accepts.
func intrinsicLegalize(f *llvm.Function, rep *Report) error {
	count := 0
	for _, blk := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), blk.Instrs...)
		for _, in := range instrs {
			if in.Op != llvm.OpCall {
				continue
			}
			switch {
			case strings.HasPrefix(in.Callee, "llvm.lifetime."):
				blk.Remove(in)
				count++
			case in.Callee == "llvm.exp.f64":
				in.Callee = "exp"
				count++
			case in.Callee == "llvm.exp.f32":
				in.Callee = "expf"
				count++
			case in.Callee == "llvm.sqrt.f64":
				in.Callee = "sqrt"
				count++
			case in.Callee == "llvm.sqrt.f32":
				in.Callee = "sqrtf"
				count++
			case strings.HasPrefix(in.Callee, "llvm.fmuladd."):
				mul := &llvm.Instr{Op: llvm.OpFMul, Name: in.Name + "_m", Ty: in.Ty,
					Args: []llvm.Value{in.Args[0], in.Args[1]}}
				add := &llvm.Instr{Op: llvm.OpFAdd, Name: in.Name + "_a", Ty: in.Ty,
					Args: []llvm.Value{mul, in.Args[2]}}
				blk.InsertBefore(mul, in)
				blk.InsertBefore(add, in)
				f.ReplaceAllUses(in, add)
				blk.Remove(in)
				count++
			case strings.HasPrefix(in.Callee, "llvm.memset.") ||
				strings.HasPrefix(in.Callee, "llvm.memcpy."):
				if err := expandMemIntrinsic(f, blk, in); err != nil {
					return err
				}
				count++
			}
		}
	}
	rep.add(FixIntrinsic, f.Name, "legalized modern intrinsics", count)
	return nil
}

// expandMemIntrinsic expands constant-length memset/memcpy into straight-
// line byte stores/loads (lengths here are small local buffers).
func expandMemIntrinsic(f *llvm.Function, blk *llvm.Block, in *llvm.Instr) error {
	n, ok := in.Args[len(in.Args)-1].(*llvm.ConstInt)
	if !ok {
		return fmt.Errorf("variable-length %s cannot be legalized", in.Callee)
	}
	if n.Val > 4096 {
		return fmt.Errorf("%s of %d bytes too large to expand", in.Callee, n.Val)
	}
	isSet := strings.HasPrefix(in.Callee, "llvm.memset.")
	for i := int64(0); i < n.Val; i++ {
		dst := &llvm.Instr{Op: llvm.OpGEP, Name: fmt.Sprintf("%s_d%d", in.Name, i),
			Ty: llvm.Ptr(llvm.I8()), SrcElem: llvm.I8(),
			Args: []llvm.Value{in.Args[0], llvm.CI(llvm.I64(), i)}}
		blk.InsertBefore(dst, in)
		var v llvm.Value
		if isSet {
			v = in.Args[1]
		} else {
			src := &llvm.Instr{Op: llvm.OpGEP, Name: fmt.Sprintf("%s_s%d", in.Name, i),
				Ty: llvm.Ptr(llvm.I8()), SrcElem: llvm.I8(),
				Args: []llvm.Value{in.Args[1], llvm.CI(llvm.I64(), i)}}
			blk.InsertBefore(src, in)
			ld := &llvm.Instr{Op: llvm.OpLoad, Name: fmt.Sprintf("%s_l%d", in.Name, i),
				Ty: llvm.I8(), SrcElem: llvm.I8(), Args: []llvm.Value{src}}
			blk.InsertBefore(ld, in)
			v = ld
		}
		st := &llvm.Instr{Op: llvm.OpStore, SrcElem: llvm.I8(), Args: []llvm.Value{v, dst}}
		blk.InsertBefore(st, in)
	}
	blk.Remove(in)
	_ = f
	return nil
}

// gepCanonicalize folds trivial pointer arithmetic: zero-index GEPs
// disappear and GEP-of-GEP chains over the same array collapse into one.
func gepCanonicalize(f *llvm.Function, rep *Report) {
	count := 0
	for _, blk := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), blk.Instrs...)
		for _, in := range instrs {
			if in.Op != llvm.OpGEP {
				continue
			}
			// gep T, p, 0  →  p
			if len(in.Args) == 2 {
				if c, ok := in.Args[1].(*llvm.ConstInt); ok && c.Val == 0 {
					f.ReplaceAllUses(in, in.Args[0])
					blk.Remove(in)
					count++
					continue
				}
			}
			// gep e, (gep [N x e], p, 0, i), j  →  gep [N x e], p, 0, i+j
			base, ok := in.Args[0].(*llvm.Instr)
			if !ok || base.Op != llvm.OpGEP || len(in.Args) != 2 || len(base.Args) != 3 {
				continue
			}
			if !base.SrcElem.IsArray() || !base.SrcElem.Elem.Equal(in.SrcElem) {
				continue
			}
			zero, ok := base.Args[1].(*llvm.ConstInt)
			if !ok || zero.Val != 0 {
				continue
			}
			inner := base.Args[2]
			outer := in.Args[1]
			var idx llvm.Value
			ic, iok := inner.(*llvm.ConstInt)
			oc, ook := outer.(*llvm.ConstInt)
			switch {
			case iok && ook:
				idx = llvm.CI(llvm.I64(), ic.Val+oc.Val)
			case iok && ic.Val == 0:
				idx = outer
			case ook && oc.Val == 0:
				idx = inner
			default:
				add := &llvm.Instr{Op: llvm.OpAdd, Name: in.Name + "_idx", Ty: llvm.I64(),
					Args: []llvm.Value{inner, outer}}
				blk.InsertBefore(add, in)
				idx = add
			}
			in.SrcElem = base.SrcElem
			in.Args = []llvm.Value{base.Args[0], llvm.CI(llvm.I64(), 0), idx}
			count++
		}
	}
	// Clean up GEPs left without uses.
	for _, blk := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), blk.Instrs...)
		for _, in := range instrs {
			if in.Op == llvm.OpGEP && !f.HasUses(in) {
				blk.Remove(in)
			}
		}
	}
	rep.add(FixGEP, f.Name, "canonicalized pointer arithmetic", count)
}

// singleExit merges multiple return blocks into one (HLS control FSMs want a
// unique done state).
func singleExit(f *llvm.Function, rep *Report) {
	var rets []*llvm.Instr
	for _, blk := range f.Blocks {
		if t := blk.Terminator(); t != nil && t.Op == llvm.OpRet {
			rets = append(rets, t)
		}
	}
	if len(rets) <= 1 {
		return
	}
	exit := f.AddBlock("hls_exit")
	var phi *llvm.Instr
	if len(rets[0].Args) > 0 {
		phi = &llvm.Instr{Op: llvm.OpPhi, Name: "hls_retval", Ty: rets[0].Args[0].Type()}
		exit.Append(phi)
		exit.Append(&llvm.Instr{Op: llvm.OpRet, Args: []llvm.Value{phi}})
	} else {
		exit.Append(&llvm.Instr{Op: llvm.OpRet})
	}
	for _, ret := range rets {
		blk := ret.Parent
		if phi != nil {
			phi.AddIncoming(ret.Args[0], blk)
		}
		blk.Remove(ret)
		br := &llvm.Instr{Op: llvm.OpBr, Blocks: []*llvm.Block{exit}}
		blk.Append(br)
	}
	rep.add(FixExit, f.Name, fmt.Sprintf("merged %d returns", len(rets)), len(rets))
}

// interfaceAnnotate attaches HLS interface modes to the top function's ports
// and normalizes the array-partition directives carried from MLIR.
func interfaceAnnotate(f *llvm.Function, rep *Report) {
	count := 0
	for i, p := range f.Params {
		mode := "ap_none"
		if p.Ty.IsPtr() && p.Ty.Elem != nil && p.Ty.Elem.IsArray() {
			mode = "ap_memory"
		}
		p.Attrs = append(p.Attrs, `"hls.interface=`+mode+`"`)
		count++
		// Normalize MLIR partition payloads: `["cyclic", 2, 0]` → cyclic,2,0
		key := fmt.Sprintf("hls.array_partition.arg%d", i)
		if raw, ok := f.Attrs[key]; ok {
			f.Attrs[key] = normalizePartition(raw)
			count++
		}
	}
	f.SetAttr("hls.top", "1")
	rep.add(FixInterface, f.Name, "annotated interface ports", count)
}

// normalizePartition converts the printed MLIR ArrayAttr payload into the
// compact form the backend parses.
func normalizePartition(raw string) string {
	s := strings.NewReplacer("[", "", "]", "", `"`, "", " ", "").Replace(raw)
	return s
}

package reduce

import (
	"strings"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir/parser"
	"repro/internal/resilience"
)

// Outcome classifies one flow run of a candidate input.
type Outcome struct {
	// Err is the flow's error (nil on a clean run). Failure is its typed
	// form when the error carries one.
	Err     error
	Failure *resilience.PassFailure
}

// FlowOracle runs a candidate module through one flow and classifies the
// result — the predicate backend for flow-failure reduction. Runs are
// isolated (panics become typed failures, conformance diagnostics become
// verify failures at the "conformance" stage) so every way a flow can go
// wrong surfaces as a matchable Outcome.
type FlowOracle struct {
	// Flow is the pipeline kind: "adaptor" (default), "cxx", or "raw".
	Flow string
	// Top is the kernel function name.
	Top string
	// Directives is the configuration to run under.
	Directives flow.Directives
	// Target is the synthesis target (DefaultTarget when zero).
	Target hls.Target
	// Opts carries base flow options — notably InjectMiscompile and
	// VerifySemantics, so injected and oracle-caught failures reproduce
	// during reduction. Isolate is forced on.
	Opts flow.Options
}

// Run executes the candidate text through the oracle's flow.
func (fo FlowOracle) Run(text string) Outcome {
	m, err := parser.Parse(text)
	if err != nil {
		return Outcome{Err: err}
	}
	tgt := fo.Target
	if tgt.ClockNs == 0 {
		tgt = hls.DefaultTarget()
	}
	opts := fo.Opts
	opts.Isolate = true
	opts.Fallback = nil
	var ferr error
	switch fo.Flow {
	case "cxx":
		_, ferr = flow.CxxFlowWith(m, fo.Top, fo.Directives, tgt, opts)
	case "raw":
		_, _, ferr = flow.RawFlowWith(m, fo.Top, fo.Directives, opts)
	default:
		_, ferr = flow.AdaptorFlowWith(m, fo.Top, fo.Directives, tgt, opts)
	}
	o := Outcome{Err: ferr}
	if pf, ok := resilience.AsPassFailure(ferr); ok {
		o.Failure = pf
	}
	return o
}

// Keep builds the reduction predicate: candidate is interesting when its
// outcome matches m.
func (fo FlowOracle) Keep(m Match) Predicate {
	return func(text string) bool { return m.Interesting(fo.Run(text)) }
}

// Match specifies which outcomes count as "still the same failure". The
// zero value matches any failure at all; each set field narrows it.
type Match struct {
	// Kind requires the typed failure kind (panic, verify, miscompile, ...).
	Kind resilience.FailureKind
	// Stage and Pass pin the failing pipeline unit. Leaving them empty is
	// the norm: reduction legitimately moves a failure between units (the
	// minimal kernel may die earlier), and the kind is the identity that
	// must survive.
	Stage, Pass string
	// DiagCheck requires the failure message to contain a diagnostic
	// check name (e.g. "conformance-flavor"). Check names are the stable
	// identity of lint/conformance findings — content-derived diagnostic
	// IDs change as the input shrinks, so they are useless for matching.
	DiagCheck string
}

// Interesting reports whether the outcome satisfies the match.
func (m Match) Interesting(o Outcome) bool {
	if o.Err == nil {
		return false
	}
	f := o.Failure
	if m.Kind != "" && (f == nil || f.Kind != m.Kind) {
		return false
	}
	if m.Stage != "" && (f == nil || f.Stage != m.Stage) {
		return false
	}
	if m.Pass != "" && (f == nil || f.Pass != m.Pass) {
		return false
	}
	if m.DiagCheck != "" && !strings.Contains(o.Err.Error(), m.DiagCheck) {
		return false
	}
	return true
}

// ReduceDirectives shrinks the directive configuration toward the empty
// set, keeping only what the predicate needs: each optimization axis is
// dropped independently, so a failure that requires pipelining keeps
// Pipeline while everything else falls away. Returns the reduced set and
// the number of accepted drops.
func ReduceDirectives(d flow.Directives, keep func(flow.Directives) bool) (flow.Directives, int) {
	steps := 0
	try := func(nd flow.Directives) {
		if keep(nd) {
			d = nd
			steps++
		}
	}
	if d.Partition != nil {
		nd := d
		nd.Partition = nil
		try(nd)
	}
	if d.Flatten {
		nd := d
		nd.Flatten = false
		try(nd)
	}
	if d.Dataflow {
		nd := d
		nd.Dataflow = false
		try(nd)
	}
	if d.Unroll > 1 {
		nd := d
		nd.Unroll = 0
		try(nd)
	}
	if d.Pipeline {
		nd := d
		nd.Pipeline = false
		nd.II = 0
		try(nd)
	} else if d.II > 1 {
		nd := d
		nd.II = 1
		try(nd)
	}
	return d, steps
}

package reduce_test

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/kgen"
	"repro/internal/reduce"
	"repro/internal/resilience"
)

// injectedOracle is the canonical test fixture: a kgen kernel run under a
// deterministic miscompile injection, so "interesting" is reproducible.
func injectedOracle(k kgen.Kernel) reduce.FlowOracle {
	return reduce.FlowOracle{
		Flow:       "adaptor",
		Top:        k.Name,
		Directives: k.Directives,
		Opts: flow.Options{
			InjectMiscompile: "mlir-opt/canonicalize",
			VerifySemantics:  true,
		},
	}
}

// The core tentpole property: an injected miscompile on a generated
// kernel reduces to a strictly smaller kernel that still miscompiles
// with the same failure kind.
func TestMLIRReducesInjectedMiscompile(t *testing.T) {
	k := kgen.Generate(3, kgen.Config{})
	oracle := injectedOracle(k)
	match := reduce.Match{Kind: resilience.KindMiscompile}
	keep := oracle.Keep(match)
	if !keep(k.MLIR) {
		t.Fatal("fixture kernel is not interesting under injection (corruption site missing?)")
	}
	res, err := reduce.MLIR(k.MLIR, keep, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("reduction made no progress on a generated kernel")
	}
	if res.Final.Ops >= res.Orig.Ops {
		t.Fatalf("ops did not shrink: %d -> %d", res.Orig.Ops, res.Final.Ops)
	}
	if !keep(res.MLIR) {
		t.Fatal("reduced kernel is no longer interesting — the invariant every step re-verifies")
	}
	t.Logf("reduced ops %d->%d loops %d->%d stores %d->%d in %d steps (%d tried)",
		res.Orig.Ops, res.Final.Ops, res.Orig.Loops, res.Final.Loops,
		res.Orig.Stores, res.Final.Stores, res.Steps, res.Tried)
}

// A predicate nothing satisfies must be rejected up front, not reduced
// toward: reducing a non-reproducing input would fabricate a repro.
func TestMLIRRejectsUninterestingInput(t *testing.T) {
	k := kgen.Generate(4, kgen.Config{})
	_, err := reduce.MLIR(k.MLIR, func(string) bool { return false }, reduce.Options{})
	if err != reduce.ErrNotInteresting {
		t.Fatalf("want ErrNotInteresting, got %v", err)
	}
}

// Directive reduction drops every axis the predicate does not need and
// keeps the one it does.
func TestReduceDirectives(t *testing.T) {
	d := flow.Directives{Pipeline: true, II: 2, Unroll: 4, Flatten: true}
	got, steps := reduce.ReduceDirectives(d, func(nd flow.Directives) bool {
		return nd.Pipeline // the failure "needs" pipelining
	})
	if !got.Pipeline {
		t.Fatal("required directive dropped")
	}
	if got.Unroll != 0 || got.Flatten {
		t.Fatalf("removable directives kept: %+v", got)
	}
	if steps == 0 {
		t.Fatal("no reduction steps recorded")
	}
}

// Bundle reduction end-to-end: bisect an injected failure into a bundle,
// reduce it, and check provenance, shrinkage, and that the reduced
// bundle reproduces the same failure kind.
func TestBundleReduction(t *testing.T) {
	k := kgen.Generate(3, kgen.Config{})
	oracle := injectedOracle(k)
	out := oracle.Run(k.MLIR)
	if out.Failure == nil || out.Failure.Kind != resilience.KindMiscompile {
		t.Fatalf("fixture did not miscompile: %+v", out)
	}
	orig := flow.Bisect(k.Build, "adaptor", k.Name+" fuzz", k.Name, k.Directives,
		oracle.Target, oracle.Opts, out.Err)
	if !orig.Reproduced {
		t.Fatalf("bisect did not reproduce: %s", orig.Note)
	}

	nb, res, err := reduce.Bundle(orig, reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Reduced == nil || nb.Reduced.FromID != orig.ID() {
		t.Fatalf("missing or wrong provenance: %+v", nb.Reduced)
	}
	if res.Final.Ops >= res.Orig.Ops {
		t.Fatalf("bundle did not shrink: ops %d -> %d", res.Orig.Ops, res.Final.Ops)
	}
	if !nb.Reproduced {
		t.Fatalf("reduced bundle does not reproduce: %s", nb.Note)
	}
	if nb.Failure.Kind != resilience.KindMiscompile {
		t.Fatalf("reduced failure kind changed: %s", nb.Failure.Kind)
	}
	if nb.Inject != orig.Inject {
		t.Fatalf("injection not carried: %q vs %q", nb.Inject, orig.Inject)
	}

	// Naming: original and reduced bundles must never collide, and both
	// names must carry the failure kind.
	if nb.Filename() == orig.Filename() {
		t.Fatalf("reduced bundle filename collides with original: %s", nb.Filename())
	}
	for _, b := range []*resilience.Bundle{orig, nb} {
		if !strings.Contains(b.Filename(), string(resilience.KindMiscompile)) {
			t.Fatalf("filename lacks failure kind: %s", b.Filename())
		}
	}
	if !strings.HasSuffix(nb.Filename(), "-reduced.json") {
		t.Fatalf("reduced bundle not marked: %s", nb.Filename())
	}
}

// Measure counts the sizes reduction is judged by.
func TestMeasure(t *testing.T) {
	k := kgen.Generate(7, kgen.Config{})
	s, err := reduce.Measure(k.MLIR)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ops == 0 || s.Loops == 0 || s.Stores == 0 {
		t.Fatalf("implausible stats for a generated kernel: %+v", s)
	}
}

package reduce

import (
	"encoding/json"
	"fmt"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/resilience"
)

// Bundle minimizes a quarantine repro bundle: the recorded input MLIR is
// reduced under a predicate pinned to the recorded failure kind, the
// directive configuration is reduced against the minimized input, and
// the result is re-bisected from scratch into a fresh bundle carrying
// Reduction provenance back to the original. The original bundle is not
// modified; callers write the returned bundle alongside it (the
// -reduced filename marker keeps them apart).
//
// The match pins the failure KIND only, not the stage/pass: a minimal
// kernel may legitimately die at an earlier unit, and chasing the exact
// unit would reject most useful shrinks. Callers needing a tighter (or
// looser) predicate can reduce manually with FlowOracle + MLIR.
func Bundle(b *resilience.Bundle, o Options) (*resilience.Bundle, Result, error) {
	if b.InputMLIR == "" {
		return nil, Result{}, fmt.Errorf("reduce: bundle has no input MLIR")
	}
	var d flow.Directives
	if len(b.Directives) > 0 {
		if err := json.Unmarshal(b.Directives, &d); err != nil {
			return nil, Result{}, fmt.Errorf("reduce: bundle directives: %w", err)
		}
	}
	tgt := hls.DefaultTarget()
	if len(b.Target) > 0 {
		if err := json.Unmarshal(b.Target, &tgt); err != nil {
			return nil, Result{}, fmt.Errorf("reduce: bundle target: %w", err)
		}
	}
	// Re-arm everything the original failure needed: the recorded
	// injection, and the semantic oracle for miscompile-kind failures
	// (Bisect does the same when replaying).
	base := flow.Options{InjectMiscompile: b.Inject}
	if b.Failure.Kind == resilience.KindMiscompile || b.Inject != "" {
		base.VerifySemantics = true
	}
	oracle := FlowOracle{Flow: b.Flow, Top: b.Top, Directives: d, Target: tgt, Opts: base}
	match := Match{Kind: b.Failure.Kind}

	res, err := MLIR(b.InputMLIR, oracle.Keep(match), o)
	if err != nil {
		return nil, res, err
	}
	rd, dsteps := ReduceDirectives(d, func(nd flow.Directives) bool {
		fo := oracle
		fo.Directives = nd
		return match.Interesting(fo.Run(res.MLIR))
	})

	build := func() *mlir.Module {
		m, err := parser.Parse(res.MLIR)
		if err != nil {
			return nil
		}
		return m
	}
	fo := oracle
	fo.Directives = rd
	out := fo.Run(res.MLIR)
	nb := flow.Bisect(build, b.Flow, b.Label, b.Top, rd, tgt, base, out.Err)
	nb.Scope = b.Scope
	nb.Reduced = &resilience.Reduction{
		FromID: b.ID(),
		Steps:  res.Steps + dsteps,
		Tried:  res.Tried,
	}
	if raw, err := json.Marshal(res.Orig); err == nil {
		nb.Reduced.OrigStats = raw
	}
	if raw, err := json.Marshal(res.Final); err == nil {
		nb.Reduced.FinalStats = raw
	}
	return nb, res, nil
}

package reduce_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/reduce"
	"repro/internal/resilience"
)

// fixturePath is the committed known-bad repro bundle: kgen seed 1 with a
// deterministic miscompile injected after mlir-opt/canonicalize, bisected
// and quarantined. CI's reduce smoke runs `hls-reduce -bundle` on this
// file; this test keeps the fixture honest from inside the suite.
//
// Regenerate after intentional bundle-schema or generator changes with:
//
//	UPDATE_REDUCE_FIXTURE=1 go test ./internal/reduce/ -run TestKnownBadFixture
const fixturePath = "testdata/known-bad-bundle.json"

func regenFixture(t *testing.T) {
	t.Helper()
	k := kgen.Generate(1, kgen.Config{})
	opts := flow.Options{InjectMiscompile: "mlir-opt/canonicalize", VerifySemantics: true}
	_, ferr := flow.AdaptorFlowWith(k.Build(), k.Name, k.Directives, hls.DefaultTarget(), opts)
	if ferr == nil {
		t.Fatal("fixture kernel did not fail under injection")
	}
	b := flow.Bisect(k.Build, "adaptor", k.Name, k.Name, k.Directives, hls.DefaultTarget(), opts, ferr)
	if !b.Reproduced {
		t.Fatalf("fixture bisect did not reproduce: %s", b.Note)
	}
	b.Version = resilience.BundleVersion
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fixturePath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s (id %s)", fixturePath, b.ID())
}

// TestKnownBadFixture asserts the committed fixture still reproduces and
// still reduces: the recorded injection is present, reduce.Bundle shrinks
// it while preserving the failure kind, and the provenance chains back to
// the fixture's ID. If this fails after an intentional change, regenerate
// (see fixturePath) and commit the new file.
func TestKnownBadFixture(t *testing.T) {
	if os.Getenv("UPDATE_REDUCE_FIXTURE") != "" {
		regenFixture(t)
	}
	b, err := resilience.ReadBundle(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Inject == "" {
		t.Fatal("fixture lost its recorded injection")
	}
	if b.Failure.Kind != resilience.KindMiscompile && b.Failure.Kind != resilience.KindInjected {
		t.Fatalf("fixture failure kind = %s, want miscompile/injected", b.Failure.Kind)
	}
	if testing.Short() {
		t.Skip("fixture reduction in short mode")
	}
	nb, res, err := reduce.Bundle(b, reduce.Options{})
	if err != nil {
		t.Fatalf("fixture no longer reduces: %v", err)
	}
	if res.Final.Ops >= res.Orig.Ops {
		t.Fatalf("fixture reduction did not shrink: %d -> %d ops", res.Orig.Ops, res.Final.Ops)
	}
	if nb.Failure.Kind != b.Failure.Kind {
		t.Fatalf("reduction changed failure kind: %s -> %s", b.Failure.Kind, nb.Failure.Kind)
	}
	if nb.Reduced == nil || nb.Reduced.FromID != b.ID() {
		t.Fatalf("provenance broken: %+v, want FromID %s", nb.Reduced, b.ID())
	}
}

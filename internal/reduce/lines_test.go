package reduce_test

import (
	"strings"
	"testing"

	"repro/internal/reduce"
)

// ddmin must strip everything the predicate does not require, keeping
// the two needles regardless of where they sit.
func TestLinesDDMin(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "filler")
	}
	lines[7] = "needle-a"
	lines[29] = "needle-b"
	keep := func(s string) bool {
		return strings.Contains(s, "needle-a") && strings.Contains(s, "needle-b")
	}
	red, steps, tried := reduce.Lines(strings.Join(lines, "\n"), keep)
	if !keep(red) {
		t.Fatal("reduction lost a needle")
	}
	got := strings.Split(red, "\n")
	if len(got) > 2 {
		t.Fatalf("ddmin left %d lines, want 2: %q", len(got), got)
	}
	if steps == 0 || tried == 0 {
		t.Fatalf("no work recorded: steps=%d tried=%d", steps, tried)
	}
}

// An input the predicate rejects comes back untouched.
func TestLinesUninteresting(t *testing.T) {
	red, steps, tried := reduce.Lines("a\nb\nc", func(string) bool { return false })
	if red != "a\nb\nc" || steps != 0 || tried != 0 {
		t.Fatalf("uninteresting input was modified: %q steps=%d tried=%d", red, steps, tried)
	}
}

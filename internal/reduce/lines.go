package reduce

import "strings"

// Lines is the classic ddmin chunk-removal loop over text lines, for
// inputs without a structured reducer (C sources fed to the cxx
// frontend, journal garbage, anything line-shaped). keep receives the
// candidate text and reports whether it is still interesting; the input
// itself must be interesting or it is returned unchanged with tried=0.
//
// The granularity starts at two chunks and doubles on failure, classic
// Zeller/Hildebrandt; every accepted removal restarts at the coarsest
// granularity, so large dead regions go first.
func Lines(text string, keep func(string) bool) (reduced string, steps, tried int) {
	lines := strings.Split(text, "\n")
	if !keep(text) {
		return text, 0, 0
	}
	n := 2
	for len(lines) >= 2 {
		if n > len(lines) {
			n = len(lines)
		}
		chunk := (len(lines) + n - 1) / n
		removedAny := false
		for start := 0; start < len(lines); start += chunk {
			end := start + chunk
			if end > len(lines) {
				end = len(lines)
			}
			cand := make([]string, 0, len(lines)-(end-start))
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[end:]...)
			tried++
			if keep(strings.Join(cand, "\n")) {
				lines = cand
				steps++
				removedAny = true
				start -= chunk // the next chunk slid into this position
			}
		}
		if removedAny {
			n = 2 // restart coarse
			continue
		}
		if n >= len(lines) {
			break
		}
		n *= 2
	}
	return strings.Join(lines, "\n"), steps, tried
}

// Package reduce is the delta-debugging engine behind hls-reduce and the
// fuzz campaign's auto-minimization: given a failing input and an
// "interestingness" predicate (does this input still provoke the same
// failure?), it greedily shrinks the input while re-verifying the
// predicate after every candidate step, so the surviving kernel is a
// minimal reproduction of the original failure, never a different one.
//
// Two reduction domains are provided: structured MLIR reduction (whole
// loop-nest deletion, statement deletion, trip-count shrinking, operand
// and load simplification — each a semantic unit of the affine programs
// the flows consume) and generic line-based ddmin for C sources. A third
// axis reduces the directive configuration. Predicates live in pred.go;
// quarantine-bundle reduction with provenance lives in bundle.go.
package reduce

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/mlir"
	"repro/internal/mlir/parser"
)

// Predicate reports whether a candidate input is still interesting —
// still reproduces the failure being chased. Reduction keeps a candidate
// only when its predicate holds, so the invariant "current input is
// interesting" survives every step.
type Predicate func(mlirText string) bool

// ErrNotInteresting is returned when the predicate rejects the original
// input: there is nothing to reduce toward.
var ErrNotInteresting = errors.New("reduce: original input is not interesting under the predicate")

// Options bounds a structured reduction.
type Options struct {
	// MaxIters caps full passes over the mutator set (default 10; each
	// accepted step strictly shrinks the candidate space, so the cap is a
	// backstop, not the usual exit).
	MaxIters int
}

// Result reports what a reduction accomplished.
type Result struct {
	// MLIR is the reduced module text (equal to the input when nothing
	// could be removed).
	MLIR string
	// Steps counts accepted reduction steps; Tried counts predicate
	// evaluations (the reduction's cost in flow runs).
	Steps, Tried int
	// Orig and Final measure the shrinkage.
	Orig, Final Stats
}

// Stats are the size measures reduction is judged by.
type Stats struct {
	// Ops counts non-structural operations (everything except the
	// module/func shell and block terminators).
	Ops int `json:"ops"`
	// Loops counts affine.for ops; Stores counts store statements.
	Loops  int `json:"loops"`
	Stores int `json:"stores"`
}

// Measure computes the size statistics of a module text.
func Measure(text string) (Stats, error) {
	m, err := parser.Parse(text)
	if err != nil {
		return Stats{}, err
	}
	return measure(m), nil
}

func measure(m *mlir.Module) Stats {
	var s Stats
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		switch o.Name {
		case mlir.OpModule, mlir.OpFunc, mlir.OpReturn, mlir.OpAffineYield, mlir.OpSCFYield:
			return true
		case mlir.OpAffineFor, mlir.OpSCFFor:
			s.Loops++
		case mlir.OpAffineStore, mlir.OpStore:
			s.Stores++
		}
		s.Ops++
		return true
	})
	return s
}

// mutator is one reduction dimension: count enumerates candidate sites in
// a freshly parsed module, apply executes site i. Sites are enumerated in
// deterministic walk order, so reduction is reproducible.
type mutator struct {
	name  string
	count func(*mlir.Module) int
	apply func(*mlir.Module, int) bool
}

// MLIR reduces a module under the predicate: repeatedly try every
// mutator site, keeping any candidate the predicate accepts, until a
// fixpoint. The input must itself be interesting.
func MLIR(text string, keep Predicate, o Options) (Result, error) {
	if keep == nil {
		return Result{}, errors.New("reduce: nil predicate")
	}
	orig, err := Measure(text)
	if err != nil {
		return Result{}, fmt.Errorf("reduce: parse input: %w", err)
	}
	if !keep(text) {
		return Result{}, ErrNotInteresting
	}
	res := Result{MLIR: text, Orig: orig}
	maxIters := o.MaxIters
	if maxIters <= 0 {
		maxIters = 10
	}
	muts := []mutator{dropLoop(), dropStore(), shrinkLoop(), simplifyOp(), constifyLoad()}
	for iter := 0; iter < maxIters; iter++ {
		progress := false
		for _, mu := range muts {
			for {
				accepted, err := applyOnce(&res, mu, keep)
				if err != nil {
					return res, err
				}
				if !accepted {
					break
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	final, err := Measure(res.MLIR)
	if err != nil {
		return res, fmt.Errorf("reduce: reduced text unparseable (reducer bug): %w", err)
	}
	res.Final = final
	return res, nil
}

// applyOnce tries every site of one mutator against the current text and
// commits the first accepted candidate. Sites are tried last-first so the
// earlier sites' indices stay valid across rejected attempts.
func applyOnce(res *Result, mu mutator, keep Predicate) (bool, error) {
	m, err := parser.Parse(res.MLIR)
	if err != nil {
		return false, fmt.Errorf("reduce: reparse (%s): %w", mu.name, err)
	}
	n := mu.count(m)
	for i := n - 1; i >= 0; i-- {
		mm, err := parser.Parse(res.MLIR)
		if err != nil {
			return false, err
		}
		if !mu.apply(mm, i) {
			continue
		}
		txt := mm.Print()
		if txt == res.MLIR || mm.Verify() != nil {
			continue
		}
		res.Tried++
		if !keep(txt) {
			continue
		}
		res.MLIR = txt
		res.Steps++
		return true, nil
	}
	return false, nil
}

// forOps enumerates affine.for ops in walk order.
func forOps(m *mlir.Module) []*mlir.Op {
	var out []*mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpAffineFor {
			out = append(out, o)
		}
		return true
	})
	return out
}

func opsNamed(m *mlir.Module, names ...string) []*mlir.Op {
	var out []*mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		for _, n := range names {
			if o.Name == n {
				out = append(out, o)
			}
		}
		return true
	})
	return out
}

// dropLoop deletes a whole affine.for (and everything inside it) — the
// coarsest cut, removing entire nests in one accepted step.
func dropLoop() mutator {
	return mutator{
		name:  "drop-loop",
		count: func(m *mlir.Module) int { return len(forOps(m)) },
		apply: func(m *mlir.Module, i int) bool {
			fs := forOps(m)
			fs[i].Erase()
			for _, f := range m.Funcs() {
				sweepDead(f)
			}
			return true
		},
	}
}

// dropStore deletes one store statement and sweeps the expression tree
// that fed it.
func dropStore() mutator {
	stores := func(m *mlir.Module) []*mlir.Op {
		return opsNamed(m, mlir.OpAffineStore, mlir.OpStore)
	}
	return mutator{
		name:  "drop-store",
		count: func(m *mlir.Module) int { return len(stores(m)) },
		apply: func(m *mlir.Module, i int) bool {
			ss := stores(m)
			f := mlir.EnclosingFunc(ss[i])
			ss[i].Erase()
			sweepDead(f)
			return true
		},
	}
}

// shrinkLoop rewrites a loop to exactly one iteration (keeping its lower
// bound when constant), collapsing trip counts and de-triangularizing
// bounds — often enough to keep a failure while making traces trivial.
func shrinkLoop() mutator {
	return mutator{
		name:  "shrink-loop",
		count: func(m *mlir.Module) int { return len(forOps(m)) },
		apply: func(m *mlir.Module, i int) bool {
			f := forOps(m)[i]
			lower, _ := f.MapAttr(mlir.AttrLowerMap)
			upper, _ := f.MapAttr(mlir.AttrUpperMap)
			step, ok := f.IntAttr(mlir.AttrStep)
			if !ok || step <= 0 || lower == nil || upper == nil {
				return false
			}
			lo := int64(0)
			loConst := len(lower.Exprs) == 1 && lower.Exprs[0].Kind == mlir.AffineConst
			if loConst {
				lo = lower.Exprs[0].Val
			}
			hiConst := len(upper.Exprs) == 1 && upper.Exprs[0].Kind == mlir.AffineConst
			if loConst && hiConst && upper.Exprs[0].Val <= lo+step {
				return false // already a single iteration
			}
			f.SetAttr(mlir.AttrLowerMap, mlir.AffineMapAttr{Map: mlir.ConstantMap(lo)})
			f.SetAttr(mlir.AttrUpperMap, mlir.AffineMapAttr{Map: mlir.ConstantMap(lo + step)})
			f.SetAttr(mlir.AttrLBCount, mlir.I(0))
			f.Operands = nil
			return true
		},
	}
}

// simplifyOp replaces a single-result op with one of its same-typed
// operands — the classic expression-tree shrink (addf(a,b) → a).
func simplifyOp() mutator {
	cands := func(m *mlir.Module) []*mlir.Op {
		var out []*mlir.Op
		mlir.Walk(m.Op, func(o *mlir.Op) bool {
			if len(o.Results) == 1 && len(o.Regions) == 0 && sameTypedOperand(o) != nil {
				out = append(out, o)
			}
			return true
		})
		return out
	}
	return mutator{
		name:  "simplify-op",
		count: func(m *mlir.Module) int { return len(cands(m)) },
		apply: func(m *mlir.Module, i int) bool {
			o := cands(m)[i]
			f := mlir.EnclosingFunc(o)
			if f == nil {
				return false
			}
			mlir.ReplaceAllUses(f, o.Result(0), sameTypedOperand(o))
			o.Erase()
			sweepDead(f)
			return true
		},
	}
}

func sameTypedOperand(o *mlir.Op) *mlir.Value {
	for _, v := range o.Operands {
		if v.Type().Equal(o.Result(0).Type()) {
			return v
		}
	}
	return nil
}

// constifyLoad replaces a load with a constant of the element type,
// disconnecting the consumer from the memory it read — the step that
// turns data-dependent failures into closed-form ones.
func constifyLoad() mutator {
	loads := func(m *mlir.Module) []*mlir.Op {
		return opsNamed(m, mlir.OpAffineLoad, mlir.OpLoad)
	}
	return mutator{
		name:  "constify-load",
		count: func(m *mlir.Module) int { return len(loads(m)) },
		apply: func(m *mlir.Module, i int) bool {
			ld := loads(m)[i]
			f := mlir.EnclosingFunc(ld)
			ty := ld.Result(0).Type()
			c := mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{ty})
			switch {
			case ty.IsFloat():
				c.SetAttr(mlir.AttrValue, mlir.FloatAttr{Value: 0.5, Ty: ty})
			case ty.IsInt() || ty.IsIndex():
				c.SetAttr(mlir.AttrValue, mlir.IntAttr{Value: 1, Ty: ty})
			default:
				return false
			}
			ld.Block().InsertBefore(c, ld)
			mlir.ReplaceAllUses(f, ld.Result(0), c.Result(0))
			ld.Erase()
			sweepDead(f)
			return true
		},
	}
}

// sweepDead erases side-effect-free ops with unused results and loops
// whose bodies are empty, to a fixpoint — the cleanup every structural
// mutation relies on to realize its full shrinkage.
func sweepDead(f *mlir.Op) {
	for {
		changed := false
		var dead []*mlir.Op
		mlir.Walk(f, func(o *mlir.Op) bool {
			if emptyLoop(o) {
				dead = append(dead, o)
				return false
			}
			if !pure(o) || len(o.Results) == 0 {
				return true
			}
			for _, r := range o.Results {
				if mlir.HasUses(f, r) {
					return true
				}
			}
			dead = append(dead, o)
			return true
		})
		for _, o := range dead {
			o.Erase()
			changed = true
		}
		if !changed {
			return
		}
	}
}

// pure reports whether erasing the op (with unused results) preserves
// semantics: arithmetic, casts, loads, and allocs qualify; stores, loops,
// and control flow do not.
func pure(o *mlir.Op) bool {
	switch o.Name {
	case mlir.OpAffineLoad, mlir.OpLoad, mlir.OpAffineApply, mlir.OpAlloc:
		return true
	}
	return strings.HasPrefix(o.Name, "arith.")
}

// emptyLoop reports an affine.for whose body holds only its terminator.
func emptyLoop(o *mlir.Op) bool {
	if o.Name != mlir.OpAffineFor || len(o.Regions) == 0 {
		return false
	}
	b := o.Regions[0].Entry()
	return b != nil && len(b.Ops) == 1
}

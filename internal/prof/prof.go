// Package prof wires the standard pprof profilers behind the CLI tools'
// -cpuprofile/-memprofile flags, mirroring go test's flags of the same
// names so the profiles feed straight into `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths (either may be
// empty) and returns a stop function to run at exit: it stops the CPU
// profile and writes the allocation profile. Start itself fails fast on
// unwritable paths so a typo is caught before hours of sweep.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	var memFile *os.File
	if memPath != "" {
		memFile, err = os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memFile != nil {
			// An up-to-date allocation profile wants a GC first, same as
			// go test -memprofile.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(memFile, 0); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := memFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartUnwritablePath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu profile path")
	}
	if _, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out")); err == nil {
		t.Fatal("expected error for unwritable mem profile path")
	}
}

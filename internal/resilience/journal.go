package resilience

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is a write-ahead log of completed work units, one JSON object
// per line keyed by a content hash. A sweep appends each unit's result the
// moment it completes; a killed sweep reopens the same file and skips
// every key already present, so resumption never recomputes finished
// work. The reader tolerates a truncated final line — the expected state
// after a crash mid-append.
//
// Every line carries a content digest over its key and data, written
// ahead of the data so truncation inside the data leaves the digest
// intact to disagree. A line whose digest does not verify — a torn tail
// that garbage bytes happened to complete into valid JSON, a bit flip, a
// foreign writer — is rejected exactly like a parse failure: the journal
// is append-only, so everything from the first bad line on is
// untrustworthy and is truncated away before appending resumes.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
	order   []string
}

type journalLine struct {
	Key string `json:"key"`
	// Sum is lineSum(Key, Data): hex SHA-256 binding the data to its key.
	Sum  string          `json:"sum"`
	Data json.RawMessage `json:"data"`
}

// lineSum digests one journal line's key and data with a separator no key
// contains, so (key, data) pairs cannot collide by concatenation.
func lineSum(key string, data []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// OpenJournal opens (or creates) the journal at path, loading every intact
// entry. A later duplicate key overwrites an earlier one.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, entries: make(map[string]json.RawMessage)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// intact tracks the byte length of the valid prefix; a torn trailing
	// line (crash mid-append) is cut off before appending resumes so the
	// re-run entry starts on a clean line.
	intact := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn
		}
		line := bytes.TrimSpace(data[off : off+nl])
		off += nl + 1
		if len(line) == 0 {
			intact = off
			continue
		}
		var e journalLine
		if err := json.Unmarshal(line, &e); err != nil {
			// A corrupt line makes everything after it untrustworthy in an
			// append-only file; the units it recorded simply re-run.
			break
		}
		if e.Sum != lineSum(e.Key, e.Data) {
			// Parsed but fails its digest: a torn line that stray bytes
			// completed into valid JSON, or tampered content. Same policy
			// as a parse failure.
			break
		}
		if _, seen := j.entries[e.Key]; !seen {
			j.order = append(j.order, e.Key)
		}
		j.entries[e.Key] = e.Data
		intact = off
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(int64(intact)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(int64(intact), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Get unmarshals the entry for key into v, reporting whether it exists.
func (j *Journal) Get(key string, v any) (bool, error) {
	j.mu.Lock()
	data, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(data, v); err != nil {
		return true, fmt.Errorf("journal entry %s: %w", key, err)
	}
	return true, nil
}

// Has reports whether key is journaled.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Put appends an entry for key and syncs it to disk before returning —
// the write-ahead property: once Put returns, a crash cannot lose the
// entry.
func (j *Journal) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal entry %s: %w", key, err)
	}
	line, err := json.Marshal(journalLine{Key: key, Sum: lineSum(key, data), Data: data})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	if _, seen := j.entries[key]; !seen {
		j.order = append(j.order, key)
	}
	j.entries[key] = data
	return nil
}

// Keys returns the distinct journaled keys in first-appended order — the
// iteration surface restart recovery scans to re-admit pending work.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.order...)
}

// Len returns the number of distinct journaled keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the underlying file. Entries stay readable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

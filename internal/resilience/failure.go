// Package resilience is the failure model of the flow runtime: a recovery
// boundary that converts pass panics into typed failures, a seeded backoff
// policy for transient-error retries, self-contained repro bundles written
// to a quarantine directory, and a crash-tolerant write-ahead journal for
// resumable sweeps. It is a leaf package — every layer of the stack (pass
// managers, flows, the evaluation engine, the DSE) builds on it without
// creating import cycles.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// FailureKind classifies how a pipeline unit failed.
type FailureKind string

const (
	// KindPanic is a recovered runtime panic inside the unit.
	KindPanic FailureKind = "panic"
	// KindError is an ordinary error returned by the unit.
	KindError FailureKind = "error"
	// KindVerify is a post-unit verifier or lint-invariant violation: the
	// unit completed but left the IR broken.
	KindVerify FailureKind = "verify"
	// KindTimeout is a deadline expiry observed at a unit boundary.
	KindTimeout FailureKind = "timeout"
	// KindCanceled is an external cancellation observed at a unit boundary.
	KindCanceled FailureKind = "canceled"
	// KindInjected is a deterministic test-injected fault.
	KindInjected FailureKind = "injected"
	// KindMiscompile is a semantic divergence caught by the differential
	// oracle: the unit completed, the IR verifies and schedules, and it
	// computes the wrong answer. Deterministic — never retried, always
	// eligible for fallback and quarantine.
	KindMiscompile FailureKind = "miscompile"
)

// PassFailure is the typed outcome of a failed pipeline unit: which stage
// of which flow broke, in which pass, and how. A recovered panic carries
// the goroutine stack; bisection attaches the IR entering the unit.
type PassFailure struct {
	// Stage is the flow phase ("mlir-opt", "lowering", "translate",
	// "adaptor", "llvm-opt", "synthesis", "emit-hlscpp", "c-frontend").
	Stage string `json:"stage"`
	// Pass is the unit within the stage (a pass name, or the stage name
	// itself for single-unit stages).
	Pass string      `json:"pass"`
	Kind FailureKind `json:"kind"`
	// Msg is the failure text (panic value or error string).
	Msg string `json:"msg"`
	// Stack is the captured goroutine stack for KindPanic.
	Stack string `json:"stack,omitempty"`

	// cause preserves the underlying error for errors.Is/As chains (not
	// serialized; Msg carries the text into bundles).
	cause error
}

// Error implements error.
func (f *PassFailure) Error() string {
	return fmt.Sprintf("%s in %s pass %q: %s", f.Kind, f.Stage, f.Pass, f.Msg)
}

// Unwrap exposes the underlying cause, so errors.Is(err,
// context.DeadlineExceeded) sees through a boundary-observed timeout.
func (f *PassFailure) Unwrap() error { return f.cause }

// NewFailure builds a PassFailure wrapping cause.
func NewFailure(stage, pass string, kind FailureKind, cause error) *PassFailure {
	return &PassFailure{Stage: stage, Pass: pass, Kind: kind, Msg: cause.Error(), cause: cause}
}

// AsPassFailure extracts the typed failure from an error chain.
func AsPassFailure(err error) (*PassFailure, bool) {
	var f *PassFailure
	ok := errors.As(err, &f)
	return f, ok
}

// Guard runs fn inside a recovery boundary attributed to (stage, pass): a
// panic becomes a *PassFailure with the captured stack instead of killing
// the process, and a plain error return is wrapped into a typed failure so
// every failure leaving a guarded unit carries its provenance.
func Guard(stage, pass string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PassFailure{
				Stage: stage, Pass: pass, Kind: KindPanic,
				Msg:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
		}
	}()
	if err := fn(); err != nil {
		if _, typed := AsPassFailure(err); typed {
			return err // already attributed by an inner boundary
		}
		kind := KindError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			kind = KindTimeout
		case errors.Is(err, context.Canceled):
			kind = KindCanceled
		}
		return NewFailure(stage, pass, kind, err)
	}
	return nil
}

// Interrupted converts a non-nil ctx.Err() observed before (stage, pass)
// into a typed failure; it returns nil while ctx is live. Pass managers
// call it at every pass boundary so a timed-out job stops at the next
// boundary instead of running the pipeline to completion in a leaked
// goroutine.
func Interrupted(ctx context.Context, stage, pass string) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	kind := KindCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		kind = KindTimeout
	}
	return NewFailure(stage, pass, kind, err)
}

// Transient reports whether err is worth retrying: timeouts and
// cancellations (including their typed boundary forms) are transient;
// panics, verify violations, and ordinary errors are deterministic and are
// not.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if f, ok := AsPassFailure(err); ok {
		return f.Kind == KindTimeout || f.Kind == KindCanceled
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

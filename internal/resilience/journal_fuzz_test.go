package resilience_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kgen"
	"repro/internal/resilience"
)

// fuzzEntry is the payload journaled in the fuzz corpus. Data depends
// only on the key index, so even a corpus-spliced replay of a whole line
// carries the same data its key always had — recovery assertions stay
// exact under arbitrary mutation.
type fuzzEntry struct {
	Index int    `json:"index"`
	Blob  string `json:"blob"`
}

func fuzzRecord(i int) (string, fuzzEntry) {
	key := fmt.Sprintf("%016x", 0x9e3779b97f4a7c15*uint64(i+1))
	return key, fuzzEntry{Index: i, Blob: fmt.Sprintf("payload-%d-%s", i, key[:6])}
}

// FuzzJournalRecover drives Journal recovery over crash-shaped files: a
// valid journal truncated at an arbitrary byte with arbitrary garbage
// appended — torn tails, merged lines, foreign suffixes. Properties:
//
//  1. OpenJournal never errors on such a file;
//  2. every record whose line lies fully inside the intact prefix (before
//     the cut) is recovered with exactly its original data — the per-line
//     digest rejects garbage-completed lines that would otherwise
//     impersonate or overwrite real entries; and
//  3. the recovered journal stays appendable, and a reopen sees both the
//     survivors and the new entry.
func FuzzJournalRecover(f *testing.F) {
	f.Add(uint8(3), uint16(0), []byte(nil))
	f.Add(uint8(5), uint16(40), []byte("}}{{garbage"))
	f.Add(uint8(1), uint16(7), []byte(`{"key":"k","sum":"x","data":1}`+"\n"))
	f.Add(uint8(8), uint16(500), []byte("\n\n\x00\xff"))
	// Seed the garbage axis from the shared kgen corpus: realistic foreign
	// text (affine MLIR) appended after the cut, the shape a crashed writer
	// sharing a directory with kernel artifacts would actually produce.
	for _, seed := range kgen.CorpusSeeds() {
		if text, ok := kgen.CorpusText(seed); ok {
			if len(text) > 256 {
				text = text[:256]
			}
			f.Add(uint8(seed%8), uint16(seed*37), []byte(text))
		}
	}
	f.Fuzz(func(t *testing.T, nrec uint8, cut uint16, garbage []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "j.jsonl")
		j, err := resilience.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		n := int(nrec%8) + 1
		for i := 0; i < n; i++ {
			key, e := fuzzRecord(i)
			if err := j.Put(key, e); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// lineEnd[i] is the byte offset just past record i's newline.
		lineEnd := make([]int, 0, n)
		for off := 0; off < len(data); {
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				break
			}
			off += nl + 1
			lineEnd = append(lineEnd, off)
		}
		if len(lineEnd) != n {
			t.Fatalf("journal has %d lines, wrote %d records", len(lineEnd), n)
		}

		cutAt := int(cut) % (len(data) + 1)
		mutated := append(append([]byte(nil), data[:cutAt]...), garbage...)
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		// Property 1: recovery never errors on a torn or garbaged file.
		j2, err := resilience.OpenJournal(path)
		if err != nil {
			t.Fatalf("OpenJournal on mutated file: %v", err)
		}

		// Property 2: every record fully inside the intact prefix is
		// recovered byte-exactly.
		for i := 0; i < n; i++ {
			if lineEnd[i] > cutAt {
				break // this and later lines were cut or merged with garbage
			}
			key, want := fuzzRecord(i)
			var got fuzzEntry
			ok, err := j2.Get(key, &got)
			if err != nil || !ok {
				t.Fatalf("intact record %d lost (cut=%d, line end %d): ok=%v err=%v",
					i, cutAt, lineEnd[i], ok, err)
			}
			if got != want {
				t.Fatalf("intact record %d mutated: got %+v want %+v", i, got, want)
			}
		}

		// Property 3: the journal remains appendable and durable.
		freshKey, freshVal := "fresh-after-recovery", fuzzEntry{Index: -1, Blob: "fresh"}
		if err := j2.Put(freshKey, freshVal); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		j2.Close()
		j3, err := resilience.OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after recovery append: %v", err)
		}
		defer j3.Close()
		var got fuzzEntry
		if ok, err := j3.Get(freshKey, &got); err != nil || !ok || got != freshVal {
			t.Fatalf("appended entry not recovered: ok=%v err=%v got=%+v", ok, err, got)
		}
		for i := 0; i < n; i++ {
			if lineEnd[i] > cutAt {
				break
			}
			key, want := fuzzRecord(i)
			if ok, err := j3.Get(key, &got); err != nil || !ok || got != want {
				t.Fatalf("record %d lost across reopen: ok=%v err=%v", i, ok, err)
			}
		}
	})
}

package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays: exponential doubling from Base with a
// deterministic seeded jitter in [0, 50%) of the step, capped at Max. A
// zero value is usable and yields DefaultBase/DefaultMax. Seeding makes
// retry schedules reproducible across runs — the same property the
// engine's fault-injection tests rely on.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// Default backoff parameters.
const (
	DefaultBase = 10 * time.Millisecond
	DefaultMax  = 2 * time.Second
)

// Delay returns the pause before retry attempt (1-based): attempt 1 is the
// first retry after the initial failure.
func (b *Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.mu.Lock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
	}
	jitter := time.Duration(b.rng.Int63n(int64(d)/2 + 1))
	b.mu.Unlock()
	return d + jitter
}

package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("mlir-opt", "canonicalize", func() error {
		panic("index out of range [3] with length 2")
	})
	f, ok := AsPassFailure(err)
	if !ok {
		t.Fatalf("want *PassFailure, got %T: %v", err, err)
	}
	if f.Kind != KindPanic || f.Stage != "mlir-opt" || f.Pass != "canonicalize" {
		t.Errorf("wrong attribution: %+v", f)
	}
	if !strings.Contains(f.Msg, "index out of range") {
		t.Errorf("panic value lost: %q", f.Msg)
	}
	if !strings.Contains(f.Stack, "resilience") {
		t.Errorf("stack not captured: %q", f.Stack)
	}
}

func TestGuardWrapsPlainError(t *testing.T) {
	sentinel := errors.New("bad IR")
	err := Guard("llvm-opt", "dce", func() error { return sentinel })
	f, ok := AsPassFailure(err)
	if !ok || f.Kind != KindError || f.Pass != "dce" {
		t.Fatalf("want typed error failure, got %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Error("cause chain broken")
	}
}

func TestGuardKeepsInnerAttribution(t *testing.T) {
	inner := NewFailure("mlir-opt", "cse", KindVerify, errors.New("dominance broken"))
	err := Guard("adaptor-flow", "mlir-opt", func() error { return inner })
	f, _ := AsPassFailure(err)
	if f.Pass != "cse" || f.Stage != "mlir-opt" {
		t.Errorf("outer guard must not re-attribute an inner failure: %+v", f)
	}
}

func TestGuardNilOnSuccess(t *testing.T) {
	if err := Guard("s", "p", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptedAndTransient(t *testing.T) {
	if err := Interrupted(context.Background(), "s", "p"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := Interrupted(ctx, "mlir-opt", "cse")
	f, ok := AsPassFailure(err)
	if !ok || f.Kind != KindTimeout {
		t.Fatalf("want timeout failure, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout cause not visible to errors.Is")
	}
	if !Transient(err) {
		t.Error("timeouts are transient")
	}
	if Transient(NewFailure("s", "p", KindPanic, errors.New("boom"))) {
		t.Error("panics are deterministic, not transient")
	}
	if Transient(nil) {
		t.Error("nil is not transient")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := &Bundle{
		Label: "gemm adaptor", Flow: "adaptor", Top: "gemm", Scope: "MINI",
		Directives: []byte(`{"Pipeline":true,"II":1}`),
		InputMLIR:  "module {}",
		Passes:     []string{"mlir-opt/hls-mark-top", "mlir-opt/canonicalize"},
		Failure: PassFailure{Stage: "mlir-opt", Pass: "canonicalize",
			Kind: KindPanic, Msg: "boom"},
		SnapshotIR: "module {}",
		Reproduced: true,
	}
	path, err := WriteBundle(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failure.Pass != "canonicalize" || !got.Reproduced || got.Top != "gemm" {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// Re-writing the same failure overwrites instead of accumulating.
	path2, err := WriteBundle(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	if path2 != path {
		t.Errorf("same failure produced a second bundle: %s vs %s", path, path2)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Errorf("quarantine dir has %d files, want 1", len(files))
	}
}

func TestBundleRejectsFutureVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repro-x.json")
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil {
		t.Fatal("future bundle versions must be rejected")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 42}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", attempt, da, db)
		}
		if da < time.Millisecond || da > 12*time.Millisecond {
			t.Errorf("attempt %d: delay %s outside [base, 1.5*max]", attempt, da)
		}
	}
	if mk().Delay(1) == (&Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 7}).Delay(3) &&
		mk().Delay(1) == (&Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 7}).Delay(1) {
		t.Log("seeds may collide on one sample; not a failure")
	}
	var zero Backoff
	if d := zero.Delay(1); d < DefaultBase {
		t.Errorf("zero-value backoff returned %s < base", d)
	}
}

type point struct {
	Label   string `json:"label"`
	Latency int64  `json:"latency"`
}

func TestJournalResumeSkipsCompleted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Put(fmt.Sprintf("k%d", i), point{Label: fmt.Sprintf("p%d", i), Latency: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("reopened journal has %d entries, want 3", j2.Len())
	}
	var p point
	ok, err := j2.Get("k1", &p)
	if err != nil || !ok || p.Label != "p1" {
		t.Fatalf("Get k1 = %v %v %+v", ok, err, p)
	}
	if j2.Has("k9") {
		t.Error("phantom key")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, _ := OpenJournal(path)
	j.Put("k0", point{Label: "p0"})
	j.Put("k1", point{Label: "p1"})
	j.Close()
	// Simulate a crash mid-append: chop the file inside the last line.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Has("k0") || j2.Has("k1") {
		t.Errorf("torn tail handling wrong: has k0=%v k1=%v", j2.Has("k0"), j2.Has("k1"))
	}
	// The journal stays appendable after recovery, and the re-run entry
	// lands intact.
	if err := j2.Put("k1", point{Label: "p1"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if !j3.Has("k1") {
		t.Error("re-journaled entry lost")
	}
}

package resilience

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Bundle is a self-contained reproduction of one flow failure: everything
// needed to re-execute the failing pipeline offline — the pristine input
// IR, the directive configuration, the target, the pass list the pipeline
// ran, and the pinned failure with the IR snapshot entering the offending
// unit. `hls-adaptor -replay bundle.json` re-executes it.
type Bundle struct {
	Version int `json:"version"`
	// Label identifies the originating job ("gemm adaptor", a DSE config).
	Label string `json:"label"`
	// Flow is the pipeline kind: "adaptor", "cxx", or "raw".
	Flow string `json:"flow"`
	Top  string `json:"top"`
	// Scope carries the caller's cache scope (size preset or input hash).
	Scope string `json:"scope,omitempty"`
	// Directives and Target are the originating layers' own JSON encodings
	// (flow.Directives, hls.Target); resilience treats them opaquely.
	Directives json.RawMessage `json:"directives,omitempty"`
	Target     json.RawMessage `json:"target,omitempty"`
	// InputMLIR is the pristine input module, before any pass ran.
	InputMLIR string `json:"input_mlir"`
	// Passes lists every pipeline unit the replay observed, in run order,
	// as "stage/pass".
	Passes []string `json:"passes"`
	// Failure pins the first offending unit (from the bisection replay
	// when it reproduced, otherwise from the original run).
	Failure PassFailure `json:"failure"`
	// SnapshotIR is the IR entering the offending unit, captured by the
	// bisection replay (empty when the failure did not reproduce).
	SnapshotIR string `json:"snapshot_ir,omitempty"`
	// Reproduced reports whether the bisection replay hit the failure
	// again; a false value usually means the original failure was
	// transient (timeout) or environmental.
	Reproduced bool `json:"reproduced"`
	// Inject records a deterministic miscompile injection ("stage/pass")
	// that was armed during the original run, so a replay re-arms the same
	// corruption and the semantic oracle reproduces the divergence.
	Inject string `json:"inject,omitempty"`
	// Note carries free-form context (e.g. why bisection was skipped).
	Note string `json:"note,omitempty"`
}

// BundleVersion is the current bundle schema version.
const BundleVersion = 1

// ID returns the bundle's content-derived identity: a short hash over the
// fields that determine the reproduction, so re-quarantining the same
// failure overwrites rather than accumulates.
func (b *Bundle) ID() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%s|%s",
		b.Label, b.Flow, b.Top, b.Directives, b.InputMLIR,
		b.Failure.Stage, b.Failure.Pass, b.Failure.Kind)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// WriteBundle serializes b into dir (created if missing) as
// repro-<id>.json and returns the written path.
func WriteBundle(dir string, b *Bundle) (string, error) {
	if b.Version == 0 {
		b.Version = BundleVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("quarantine dir: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("marshal bundle: %w", err)
	}
	path := filepath.Join(dir, "repro-"+b.ID()+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("write bundle: %w", err)
	}
	return path, nil
}

// ReadBundle loads a bundle written by WriteBundle.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse bundle %s: %w", path, err)
	}
	if b.Version > BundleVersion {
		return nil, fmt.Errorf("bundle %s has version %d, this build understands <= %d",
			path, b.Version, BundleVersion)
	}
	return &b, nil
}

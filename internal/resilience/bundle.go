package resilience

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Bundle is a self-contained reproduction of one flow failure: everything
// needed to re-execute the failing pipeline offline — the pristine input
// IR, the directive configuration, the target, the pass list the pipeline
// ran, and the pinned failure with the IR snapshot entering the offending
// unit. `hls-adaptor -replay bundle.json` re-executes it.
type Bundle struct {
	Version int `json:"version"`
	// Label identifies the originating job ("gemm adaptor", a DSE config).
	Label string `json:"label"`
	// Flow is the pipeline kind: "adaptor", "cxx", or "raw".
	Flow string `json:"flow"`
	Top  string `json:"top"`
	// Scope carries the caller's cache scope (size preset or input hash).
	Scope string `json:"scope,omitempty"`
	// Directives and Target are the originating layers' own JSON encodings
	// (flow.Directives, hls.Target); resilience treats them opaquely.
	Directives json.RawMessage `json:"directives,omitempty"`
	Target     json.RawMessage `json:"target,omitempty"`
	// InputMLIR is the pristine input module, before any pass ran.
	InputMLIR string `json:"input_mlir"`
	// Passes lists every pipeline unit the replay observed, in run order,
	// as "stage/pass".
	Passes []string `json:"passes"`
	// Failure pins the first offending unit (from the bisection replay
	// when it reproduced, otherwise from the original run).
	Failure PassFailure `json:"failure"`
	// SnapshotIR is the IR entering the offending unit, captured by the
	// bisection replay (empty when the failure did not reproduce).
	SnapshotIR string `json:"snapshot_ir,omitempty"`
	// Reproduced reports whether the bisection replay hit the failure
	// again; a false value usually means the original failure was
	// transient (timeout) or environmental.
	Reproduced bool `json:"reproduced"`
	// Inject records a deterministic miscompile injection ("stage/pass")
	// that was armed during the original run, so a replay re-arms the same
	// corruption and the semantic oracle reproduces the divergence.
	Inject string `json:"inject,omitempty"`
	// Reduced carries delta-debugging provenance when this bundle was
	// minimized from another one (nil for original quarantine bundles).
	Reduced *Reduction `json:"reduced,omitempty"`
	// Note carries free-form context (e.g. why bisection was skipped).
	Note string `json:"note,omitempty"`
}

// Reduction records how a minimized bundle came to be: which bundle it
// was reduced from, how many accepted reduction steps it took, and the
// before/after size measures — the evidence that the reproduction really
// shrank and the audit trail back to the original failure.
type Reduction struct {
	// FromID is the ID() of the bundle this one was reduced from.
	FromID string `json:"from_id"`
	// Steps counts accepted reduction steps (MLIR + directive axes);
	// Tried counts predicate evaluations the reduction spent.
	Steps int `json:"steps"`
	Tried int `json:"tried,omitempty"`
	// Sizes are opaque to resilience (the reducer's own JSON encoding of
	// its before/after statistics), mirrored from internal/reduce.
	OrigStats  json.RawMessage `json:"orig_stats,omitempty"`
	FinalStats json.RawMessage `json:"final_stats,omitempty"`
}

// BundleVersion is the current bundle schema version.
const BundleVersion = 1

// ID returns the bundle's content-derived identity: a short hash over the
// fields that determine the reproduction, so re-quarantining the same
// failure overwrites rather than accumulates.
func (b *Bundle) ID() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s|%s|%s",
		b.Label, b.Flow, b.Top, canonicalJSON(b.Directives), b.InputMLIR,
		b.Failure.Stage, b.Failure.Pass, b.Failure.Kind)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// canonicalJSON compacts a raw message before hashing: MarshalIndent
// re-indents embedded RawMessages on write, so without this the ID would
// drift across a write/read round-trip.
func canonicalJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

// Filename is the bundle's quarantine file name:
// repro-<kind>-<id>[-reduced].json. The failure kind makes a quarantine
// directory legible at a glance, the content digest keeps distinct
// failures from colliding, and the -reduced marker keeps a minimized
// bundle from ever overwriting the original it was derived from (their
// IDs differ too — the input is part of the digest — but the marker makes
// the relationship explicit and glob-able).
func (b *Bundle) Filename() string {
	kind := string(b.Failure.Kind)
	if kind == "" {
		kind = "unknown"
	}
	name := "repro-" + kind + "-" + b.ID()
	if b.Reduced != nil {
		name += "-reduced"
	}
	return name + ".json"
}

// WriteBundle serializes b into dir (created if missing) under
// b.Filename() and returns the written path.
func WriteBundle(dir string, b *Bundle) (string, error) {
	if b.Version == 0 {
		b.Version = BundleVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("quarantine dir: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("marshal bundle: %w", err)
	}
	path := filepath.Join(dir, b.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("write bundle: %w", err)
	}
	return path, nil
}

// Replay exit codes: the single documented contract between `hls-adaptor
// -replay`, the CI quarantine sweeps, and the reduction predicates that
// shell out to replays. README and -help text mirror these constants;
// TestReplayExitCodes holds all three together.
const (
	// ReplayExitReproduced (0): the replay failed again and the failure was
	// re-pinned from scratch (a shifted stage/pass is noted on stderr, not
	// an error — the bundle is still a live reproduction).
	ReplayExitReproduced = 0
	// ReplayExitUnusable (1): the bundle could not be exercised (unreadable
	// file, bad directives/target, no or unparseable input IR).
	ReplayExitUnusable = 1
	// ReplayExitClean (2): the replay ran clean — the recorded failure did
	// not reproduce (transient, environmental, or since fixed).
	ReplayExitClean = 2
)

// ReadBundle loads a bundle written by WriteBundle.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse bundle %s: %w", path, err)
	}
	if b.Version > BundleVersion {
		return nil, fmt.Errorf("bundle %s has version %d, this build understands <= %d",
			path, b.Version, BundleVersion)
	}
	return &b, nil
}

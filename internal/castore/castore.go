// Package castore is the shared on-disk content-addressed record store
// underneath the incremental-compilation layer and the engine's persistent
// result cache: one JSON file per record under a sharded directory, safe
// for any number of processes — daemons and CLIs — sharing one tree.
//
// Integrity model. Every record is wrapped in an envelope carrying the hex
// SHA-256 of its payload. Writes are atomic (temp file + rename in the
// record's own directory), so a killed writer never leaves a torn record
// under a record path; the digest additionally catches what atomicity
// cannot — a corrupt-but-valid-JSON file written by a foreign tool, a
// bit-flipped disk block, a stale record from an incompatible layout. A
// record that fails the digest (or does not parse as an envelope at all)
// is never returned: it is counted, moved aside to <name>.quarantined for
// inspection, and remembered in a negative front-cache so a hot key's
// corruption is diagnosed once, not re-read and re-parsed on every miss.
//
// Concurrency model. Keys are content addresses: two writers racing on one
// key are writing identical payloads by construction, so either rename
// winning is correct. All methods are safe for concurrent use within a
// process; cross-process safety needs no locking beyond rename atomicity.
//
// Failure model. Get never fails loudly — a missing, unreadable, or
// corrupt record is a miss and the caller recomputes — but every I/O error
// and every quarantined record is counted in Counters, so a full disk, a
// read-only tree, or a corruption storm is visible in /stats instead of
// presenting as a mysteriously cold cache. Put returns its error for the
// same reason.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Counters is a snapshot of a store's activity and health.
type Counters struct {
	// Hits and Misses count Get outcomes (a quarantined or errored read
	// is a miss).
	Hits, Misses int64
	// PutErrors and GetErrors count I/O failures (marshal, mkdir, create,
	// write, close, rename on the put side; unreadable files on the get
	// side — a missing file is a plain miss, not an error).
	PutErrors, GetErrors int64
	// Corrupt counts records that failed envelope parsing or digest
	// verification and were quarantined.
	Corrupt int64
}

// Add returns the field-wise sum of two snapshots.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Hits:      c.Hits + o.Hits,
		Misses:    c.Misses + o.Misses,
		PutErrors: c.PutErrors + o.PutErrors,
		GetErrors: c.GetErrors + o.GetErrors,
		Corrupt:   c.Corrupt + o.Corrupt,
	}
}

// Store is a digest-verified content-addressed record store rooted at one
// directory.
type Store struct {
	dir string

	hits, misses, putErrors, getErrors, corrupt atomic.Int64

	// mu guards bad, the negative front-cache of keys whose on-disk record
	// was quarantined: the first Get pays the read+parse and moves the file
	// aside; every later Get of the same key is an in-memory miss until a
	// Put rewrites the record.
	mu  sync.Mutex
	bad map[string]bool
}

// envelope is the on-disk record layout. Sum is the hex SHA-256 of the
// exact Payload bytes; field order keeps the digest ahead of the payload
// so truncation inside the payload leaves the digest intact to disagree.
type envelope struct {
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// SumBytes returns the hex SHA-256 of b — the digest stored in record
// envelopes.
func SumBytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: open %s: %w", dir, err)
	}
	return &Store{dir: dir, bad: make(map[string]bool)}, nil
}

// path shards records by the first two bytes of the key so directories do
// not grow unboundedly flat.
func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get returns the payload stored under key. A missing, unreadable, or
// corrupt record is a miss; corruption is quarantined and front-cached so
// it costs one read, ever, until a Put replaces the record.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	quarantined := s.bad[key]
	s.mu.Unlock()
	if quarantined {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.getErrors.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	var env envelope
	if jerr := json.Unmarshal(data, &env); jerr != nil || env.Sum != SumBytes(env.Payload) {
		s.quarantine(key, path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Payload, true
}

// Put writes payload under key atomically, returning (and counting) any
// I/O error. A successful Put clears the key's quarantine mark: the fresh
// record supersedes whatever was moved aside.
func (s *Store) Put(key string, payload []byte) error {
	err := s.write(key, payload)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.mu.Lock()
	delete(s.bad, key)
	s.mu.Unlock()
	return nil
}

func (s *Store) write(key string, payload []byte) error {
	data, err := json.Marshal(envelope{Sum: SumBytes(payload), Payload: payload})
	if err != nil {
		return fmt.Errorf("castore: marshal %s: %w", key, err)
	}
	path := s.path(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		if werr != nil {
			return fmt.Errorf("castore: write %s: %w", key, werr)
		}
		return fmt.Errorf("castore: close %s: %w", key, cerr)
	}
	// Rename is atomic within the directory; concurrent writers of one key
	// carry identical content, so either rename winning is correct.
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("castore: rename %s: %w", key, err)
	}
	return nil
}

// Quarantine moves the record under key aside as corrupt and front-caches
// the decision. Callers use it when a record passes the digest but fails
// their own schema — a digest-valid envelope wrapping bytes that are not a
// record of theirs is just as untrustworthy.
func (s *Store) Quarantine(key string) {
	s.quarantine(key, s.path(key))
}

func (s *Store) quarantine(key, path string) {
	s.mu.Lock()
	already := s.bad[key]
	s.bad[key] = true
	s.mu.Unlock()
	if already {
		return
	}
	s.corrupt.Add(1)
	// Move the file aside for inspection; if the rename loses a race with
	// a concurrent quarantine or the file is gone, there is nothing left
	// to preserve.
	if err := os.Rename(path, path+".quarantined"); err != nil && !os.IsNotExist(err) {
		os.Remove(path)
	}
}

// Counters returns a snapshot of the store's activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		PutErrors: s.putErrors.Load(),
		GetErrors: s.getErrors.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

// Len counts intact records on disk (quarantined files excluded).
func (s *Store) Len() int {
	n := 0
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

package castore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"v":42}`)
	if err := s.Put("abcd1234", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("abcd1234")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q ok=%v, want %q", got, ok, payload)
	}
	// A fresh handle (cross-process path) sees the record.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get("abcd1234")
	if !ok || string(got) != string(payload) {
		t.Fatalf("reopened Get = %q ok=%v", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
	c := s2.Counters()
	if c.Hits != 1 || c.Corrupt != 0 {
		t.Fatalf("counters %+v, want 1 hit, 0 corrupt", c)
	}
}

func TestMissingKeyIsAMissNotAnError(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("phantom hit")
	}
	c := s.Counters()
	if c.Misses != 1 || c.GetErrors != 0 {
		t.Fatalf("counters %+v, want 1 miss and no get errors", c)
	}
}

// corruptOnDisk writes raw bytes at key's record path, bypassing Put.
func corruptOnDisk(t *testing.T, s *Store, key string, raw []byte) {
	t.Helper()
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptRecordsQuarantinedCountedNeverServed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"torn", []byte(`{"sum":"ab","payload":{"v":`)},
		{"foreign-valid-json", []byte(`{"latency":9}`)},
		{"digest-mismatch", func() []byte {
			// A well-formed envelope whose payload was tampered after the
			// digest was computed — valid JSON end to end, wrong content.
			env, _ := json.Marshal(map[string]any{
				"sum":     SumBytes([]byte(`{"v":1}`)),
				"payload": json.RawMessage(`{"v":2}`),
			})
			return env
		}()},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := "deadbeef" + tc.name
			corruptOnDisk(t, s, key, tc.raw)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			c := s.Counters()
			if c.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
			}
			// The file was moved aside for inspection.
			if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
				t.Fatalf("corrupt record still at its path (err=%v)", err)
			}
			if _, err := os.Stat(s.path(key) + ".quarantined"); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
		})
	}
}

func TestQuarantineDecisionIsFrontCached(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "cafecafe"
	corruptOnDisk(t, s, key, []byte("not json"))
	for i := 0; i < 5; i++ {
		if _, ok := s.Get(key); ok {
			t.Fatal("corrupt record served")
		}
	}
	// The read+parse+quarantine happened exactly once; the four later
	// gets were front-cached misses.
	c := s.Counters()
	if c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1 (decision not front-cached)", c.Corrupt)
	}
	if c.Misses != 5 {
		t.Fatalf("Misses = %d, want 5", c.Misses)
	}
	// Planting fresh corruption at the same path must NOT be re-read: the
	// negative cache answers without touching the file.
	corruptOnDisk(t, s, key, []byte("other garbage"))
	s.Get(key)
	if got := s.Counters().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d after re-plant, want 1", got)
	}
	// A Put rewrites the record and clears the mark.
	if err := s.Put(key, []byte(`"fixed"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != `"fixed"` {
		t.Fatalf("after rewrite: %q ok=%v", got, ok)
	}
}

func TestExplicitQuarantineForSchemaCorruption(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Digest-valid envelope whose payload is not the caller's schema.
	if err := s.Put("k1", []byte(`"a string, not a record"`)); err != nil {
		t.Fatal(err)
	}
	s.Quarantine("k1")
	if _, ok := s.Get("k1"); ok {
		t.Fatal("quarantined record served")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
	}
	if _, err := os.Stat(s.path("k1") + ".quarantined"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
}

func TestPutErrorIsReturnedAndCounted(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil { // read-only tree
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := s.Put("aa11", []byte(`1`)); err == nil {
		t.Fatal("Put on a read-only tree returned nil")
	}
	if c := s.Counters(); c.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", c.PutErrors)
	}
}

func TestUnreadableRecordCountsGetError(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("file permissions do not bind as root")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bb22", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(s.path("bb22"), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("bb22"); ok {
		t.Fatal("unreadable record served")
	}
	if c := s.Counters(); c.GetErrors != 1 {
		t.Fatalf("GetErrors = %d, want 1", c.GetErrors)
	}
}

func TestConcurrentPutGetSameKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%02d", i%7)
				payload := []byte(fmt.Sprintf(`{"k":%d}`, i%7))
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put: %v", err)
				}
				if got, ok := s.Get(key); ok && string(got) != string(payload) {
					t.Errorf("torn read: %q", got)
				}
			}
		}(w)
	}
	wg.Wait()
	if c := s.Counters(); c.Corrupt != 0 || c.PutErrors != 0 || c.GetErrors != 0 {
		t.Fatalf("counters after race: %+v", c)
	}
}

// TestConcurrentCorruptReadersQuarantineOnce races two readers on one
// corrupt record: both must come back as misses, and exactly one of them
// must pay for the quarantine — one Corrupt count, one .quarantined file,
// nothing left at the record path. Run many rounds so the schedules where
// both readers pass the front-cache check before either marks the key are
// actually exercised.
func TestConcurrentCorruptReadersQuarantineOnce(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key := "feedface"
		corruptOnDisk(t, s, key, []byte("garbage, not an envelope"))

		start := make(chan struct{})
		var wg sync.WaitGroup
		var hits atomic.Int32
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if _, ok := s.Get(key); ok {
					hits.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()

		if hits.Load() != 0 {
			t.Fatalf("round %d: corrupt record served as a hit", round)
		}
		c := s.Counters()
		if c.Misses != 2 {
			t.Fatalf("round %d: Misses = %d, want 2", round, c.Misses)
		}
		if c.Corrupt != 1 {
			t.Fatalf("round %d: Corrupt = %d, want exactly 1", round, c.Corrupt)
		}
		if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
			t.Fatalf("round %d: record still at its path (err=%v)", round, err)
		}
		if _, err := os.Stat(s.path(key) + ".quarantined"); err != nil {
			t.Fatalf("round %d: quarantined copy missing: %v", round, err)
		}
	}
}

func TestLenExcludesQuarantined(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put("aa01", []byte(`1`))
	s.Put("aa02", []byte(`2`))
	corruptOnDisk(t, s, "aa03", []byte("junk"))
	s.Get("aa03") // quarantines
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestSumBytesStable(t *testing.T) {
	if got := SumBytes([]byte("abc")); !strings.HasPrefix(got, "ba7816bf") {
		t.Fatalf("SumBytes(abc) = %s, want sha256 prefix ba7816bf", got)
	}
}

package dse

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

func explore(t *testing.T, kernel string) *Result {
	t.Helper()
	k := polybench.Get(kernel)
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(func() *mlir.Module { return k.Build(s) }, k.Name, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExploreGemm(t *testing.T) {
	res := explore(t, "gemm")
	if len(res.Points) != len(Space()) {
		t.Fatalf("want %d points, got %d", len(Space()), len(res.Points))
	}
	if len(res.Pareto) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	if len(res.Pareto) > len(res.Points) {
		t.Fatal("frontier larger than space")
	}
	// The frontier must include something faster than base.
	var base Point
	for _, p := range res.Points {
		if p.Label == "base" {
			base = p
		}
	}
	best := res.Pareto[0]
	if best.Latency() >= base.Latency() {
		t.Errorf("DSE found nothing faster than base: best=%d base=%d",
			best.Latency(), base.Latency())
	}
}

func TestParetoProperties(t *testing.T) {
	for _, kernel := range []string{"gemm", "jacobi2d"} {
		res := explore(t, kernel)
		// 1. No frontier point dominates another.
		for i, a := range res.Pareto {
			for j, b := range res.Pareto {
				if i != j && dominates(a, b) {
					t.Errorf("%s: frontier point %s dominates frontier point %s",
						kernel, a.Label, b.Label)
				}
			}
		}
		// 2. Every non-frontier point is dominated by (or duplicates) some
		// frontier point.
		onFrontier := func(p Point) bool {
			for _, q := range res.Pareto {
				if q.Latency() == p.Latency() && q.Area == p.Area {
					return true
				}
			}
			return false
		}
		for _, p := range res.Points {
			if onFrontier(p) {
				continue
			}
			covered := false
			for _, q := range res.Pareto {
				if dominates(q, p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("%s: point %s neither on frontier nor dominated", kernel, p.Label)
			}
		}
		// 3. Frontier sorted ascending by latency, descending-ish by area.
		for i := 1; i < len(res.Pareto); i++ {
			if res.Pareto[i].Latency() < res.Pareto[i-1].Latency() {
				t.Errorf("%s: frontier not sorted by latency", kernel)
			}
			if res.Pareto[i].Area >= res.Pareto[i-1].Area {
				t.Errorf("%s: along the frontier area must strictly decrease as latency grows", kernel)
			}
		}
	}
}

func TestSpaceLabelsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Space() {
		if seen[c.Label] {
			t.Errorf("duplicate label %q", c.Label)
		}
		seen[c.Label] = true
	}
	if len(seen) < 10 {
		t.Errorf("space too small: %d configs", len(seen))
	}
}

func TestResultString(t *testing.T) {
	res := explore(t, "atax")
	s := res.String()
	if len(s) == 0 || s[0] != 'c' {
		t.Errorf("render broken:\n%s", s)
	}
}

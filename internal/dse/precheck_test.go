package dse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/absint"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

func exploreOpts(t *testing.T, kernel string, opts Options) *Result {
	t.Helper()
	k := polybench.Get(kernel)
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExploreWith(func() *mlir.Module { return k.Build(s) }, k.Name, hls.DefaultTarget(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// paretoSig renders a frontier as comparable label/latency/area rows.
func paretoSig(res *Result) string {
	s := ""
	for _, p := range res.Pareto {
		s += fmt.Sprintf("%s %d %.0f\n", p.Label, p.Latency(), p.Area)
	}
	return s
}

// TestPrecheckPrunesInfeasibleII: conv2d accumulates into a loop-invariant
// output address in its innermost loop, so the load→fmul→fadd→store
// recurrence puts the dependence-implied RecMII well above 2: every
// requested II in the sweep is below the floor and only the smallest
// request per directive group can produce a distinct schedule. The
// pre-check must prune the II=2 twins, evaluate fewer points, and report
// the identical Pareto frontier (same labels, latencies, and areas) as the
// full sweep.
func TestPrecheckPrunesInfeasibleII(t *testing.T) {
	full := exploreOpts(t, "conv2d", Options{})
	pruned := exploreOpts(t, "conv2d", Options{Precheck: true})

	if len(pruned.Pruned) == 0 {
		t.Fatal("pre-check pruned nothing on conv2d, which has a known recurrence")
	}
	if len(pruned.Points)+len(pruned.Pruned) != len(full.Points) {
		t.Errorf("points(%d) + pruned(%d) != full space(%d)",
			len(pruned.Points), len(pruned.Pruned), len(full.Points))
	}
	for _, pp := range pruned.Pruned {
		if pp.Label[:len("pipeII2")] != "pipeII2" {
			t.Errorf("unexpected pruned point %q (only II=2 twins should go)", pp.Label)
		}
	}
	if got, want := paretoSig(pruned), paretoSig(full); got != want {
		t.Errorf("pre-check changed the Pareto frontier:\n--- full\n%s--- precheck\n%s", want, got)
	}
	// Every pruned label's full-sweep result must equal its kept
	// representative's — the justification for not evaluating it.
	byLabel := map[string]Point{}
	for _, p := range full.Points {
		byLabel[p.Label] = p
	}
	for _, pp := range pruned.Pruned {
		twin := byLabel[pp.Label]
		kept := byLabel["pipeII1"+pp.Label[len("pipeII2"):]]
		if twin.Report == nil || kept.Report == nil {
			t.Fatalf("missing full-sweep result for %q or its kept twin", pp.Label)
		}
		if twin.Latency() != kept.Latency() || twin.Area != kept.Area {
			t.Errorf("pruned %q (lat=%d area=%.0f) differs from kept twin (lat=%d area=%.0f)",
				pp.Label, twin.Latency(), twin.Area, kept.Latency(), kept.Area)
		}
	}
}

// TestPrecheckNoRecurrenceKeepsSpace: gemm keeps its accumulator in a
// register across the innermost loop (no loop-invariant memory address is
// both loaded and stored per iteration), so its RecMII floor is 1 and the
// pre-check must keep the whole space.
func TestPrecheckNoRecurrenceKeepsSpace(t *testing.T) {
	res := exploreOpts(t, "gemm", Options{Precheck: true})
	if len(res.Pruned) != 0 {
		t.Errorf("gemm has no memory recurrence; pruned %d point(s): %+v", len(res.Pruned), res.Pruned)
	}
	if len(res.Points) != len(Space()) {
		t.Errorf("want full space %d, got %d", len(Space()), len(res.Points))
	}
}

// TestPrecheckResourceFloorPrunes: jacobi1d issues three loads of the same
// array per stencil iteration, so even with no recurrence (its RecMII floor
// is 1, and the recurrence-only rule of the earlier pre-check pruned
// nothing) the default dual-ported memory bounds the II at ceil(3/2)=2 for
// the unpartitioned groups. The resource-aware pre-check must prune those
// II=2 twins and still report the exact Pareto frontier of the full sweep.
func TestPrecheckResourceFloorPrunes(t *testing.T) {
	k := polybench.Get("jacobi1d")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := flow.PrepareLLVM(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		t.Fatal(err)
	}
	recFloor, ok := lint.MinPipelineFloor(lm, k.Name, hls.DefaultTarget())
	if !ok || recFloor != 1 {
		t.Fatalf("premise broken: jacobi1d recurrence floor = %d (ok=%v), want 1 "+
			"(the recurrence-only rule must have pruned nothing)", recFloor, ok)
	}

	full := exploreOpts(t, "jacobi1d", Options{})
	pruned := exploreOpts(t, "jacobi1d", Options{Precheck: true})
	if len(pruned.Pruned) == 0 {
		t.Fatal("resource-aware pre-check pruned nothing on jacobi1d")
	}
	if len(pruned.Points)+len(pruned.Pruned) != len(full.Points) {
		t.Errorf("points(%d) + pruned(%d) != full space(%d)",
			len(pruned.Points), len(pruned.Pruned), len(full.Points))
	}
	for _, pp := range pruned.Pruned {
		if !strings.Contains(pp.Reason, "ResMII") {
			t.Errorf("pruned %q for a non-resource reason: %s", pp.Label, pp.Reason)
		}
		if strings.Contains(pp.Label, "part") {
			t.Errorf("partitioned group %q should not be port-bound: extra ports lower ResMII below the request", pp.Label)
		}
	}
	if got, want := paretoSig(pruned), paretoSig(full); got != want {
		t.Errorf("pre-check changed the Pareto frontier:\n--- full\n%s--- precheck\n%s", want, got)
	}
}

// TestPrecheckFrontierAllKernels sweeps every kernel with and without the
// pre-check and asserts two invariants on each: the pruned points partition
// the space (nothing silently dropped) and the Pareto frontier is identical
// to the exhaustive sweep's. This is the global soundness statement behind
// the fig-8 reproduction: pruning only ever removes points whose schedule a
// kept representative already realises.
func TestPrecheckFrontierAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("explores every kernel twice")
	}
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			full := exploreOpts(t, k.Name, Options{})
			pre := exploreOpts(t, k.Name, Options{Precheck: true})
			if len(pre.Points)+len(pre.Pruned) != len(full.Points) {
				t.Errorf("points(%d) + pruned(%d) != full space(%d)",
					len(pre.Points), len(pre.Pruned), len(full.Points))
			}
			if got, want := paretoSig(pre), paretoSig(full); got != want {
				t.Errorf("pre-check changed the Pareto frontier:\n--- full\n%s--- precheck\n%s", want, got)
			}
		})
	}
}

// TestDistanceFloorNeverLooser: on every kernel's prepared module, the
// distance-aware recurrence floor that lint.PipelineFloors reports (the
// affine dependence engine powering the pre-check) must be at least the
// structural alias-filtered floor the pre-check used before: exact distances
// can only discover recurrences the same-address heuristic missed or agree
// with it (a structural distance-1 recurrence is a ZIV pair the engine pins
// at d=1), never relax one. A looser floor would let the pre-check keep
// points the scheduler then prices above the frontier's representative.
func TestDistanceFloorNeverLooser(t *testing.T) {
	tgt := hls.DefaultTarget()
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			lm, err := flow.PrepareLLVM(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
			if err != nil {
				t.Fatal(err)
			}
			floors, ok := lint.PipelineFloors(lm, k.Name, tgt)
			if !ok {
				t.Fatalf("no pipelined loops found in %s", k.Name)
			}
			f := lm.FindFunc(k.Name)
			cfg := analysis.NewCFG(f)
			loops := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
			pts := absint.PointsTo(f)
			structural := map[string]int{}
			for _, l := range loops.Loops {
				if !l.IsInnermost() {
					continue
				}
				var instrs []*llvm.Instr
				for _, b := range cfg.Order {
					if l.Contains(b) {
						instrs = append(instrs, b.Instrs...)
					}
				}
				header := l.Header
				structural[header.Name] = tgt.RecMII(instrs, func(v llvm.Value) bool {
					return hls.DependsOnLoopPhi(v, header)
				}, pts.MayAlias)
			}
			for _, lf := range floors {
				old, found := structural[lf.Header]
				if !found {
					t.Fatalf("loop %%%s missing from the structural recomputation", lf.Header)
				}
				if lf.RecMII < old {
					t.Errorf("loop %%%s: distance-aware RecMII=%d is looser than structural RecMII=%d",
						lf.Header, lf.RecMII, old)
				}
			}
		})
	}
}

// TestSeidel2dGainsExactDistance pins the precision win the affine engine
// delivers on the corpus: seidel2d's innermost loop reads A[i][j-1] — the
// value stored to A[i][j] one iteration earlier — a real distance-1
// recurrence the structural same-address model cannot see (the addresses are
// IV-dependent and textually different). The distance-aware floor must rise
// above the structural floor of 1 on that loop.
func TestSeidel2dGainsExactDistance(t *testing.T) {
	k := polybench.Get("seidel2d")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := flow.PrepareLLVM(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		t.Fatal(err)
	}
	floor, ok := lint.MinPipelineFloor(lm, k.Name, hls.DefaultTarget())
	if !ok {
		t.Fatal("no pipelined loop found in seidel2d")
	}
	if floor <= 1 {
		t.Errorf("seidel2d distance-aware recurrence floor = %d, want > 1 "+
			"(the A[i][j-1] flow dependence must constrain the II)", floor)
	}
}

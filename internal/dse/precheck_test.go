package dse

import (
	"fmt"
	"testing"

	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

func exploreOpts(t *testing.T, kernel string, opts Options) *Result {
	t.Helper()
	k := polybench.Get(kernel)
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExploreWith(func() *mlir.Module { return k.Build(s) }, k.Name, hls.DefaultTarget(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// paretoSig renders a frontier as comparable label/latency/area rows.
func paretoSig(res *Result) string {
	s := ""
	for _, p := range res.Pareto {
		s += fmt.Sprintf("%s %d %.0f\n", p.Label, p.Latency(), p.Area)
	}
	return s
}

// TestPrecheckPrunesInfeasibleII: conv2d accumulates into a loop-invariant
// output address in its innermost loop, so the load→fmul→fadd→store
// recurrence puts the dependence-implied RecMII well above 2: every
// requested II in the sweep is below the floor and only the smallest
// request per directive group can produce a distinct schedule. The
// pre-check must prune the II=2 twins, evaluate fewer points, and report
// the identical Pareto frontier (same labels, latencies, and areas) as the
// full sweep.
func TestPrecheckPrunesInfeasibleII(t *testing.T) {
	full := exploreOpts(t, "conv2d", Options{})
	pruned := exploreOpts(t, "conv2d", Options{Precheck: true})

	if len(pruned.Pruned) == 0 {
		t.Fatal("pre-check pruned nothing on conv2d, which has a known recurrence")
	}
	if len(pruned.Points)+len(pruned.Pruned) != len(full.Points) {
		t.Errorf("points(%d) + pruned(%d) != full space(%d)",
			len(pruned.Points), len(pruned.Pruned), len(full.Points))
	}
	for _, pp := range pruned.Pruned {
		if pp.Label[:len("pipeII2")] != "pipeII2" {
			t.Errorf("unexpected pruned point %q (only II=2 twins should go)", pp.Label)
		}
	}
	if got, want := paretoSig(pruned), paretoSig(full); got != want {
		t.Errorf("pre-check changed the Pareto frontier:\n--- full\n%s--- precheck\n%s", want, got)
	}
	// Every pruned label's full-sweep result must equal its kept
	// representative's — the justification for not evaluating it.
	byLabel := map[string]Point{}
	for _, p := range full.Points {
		byLabel[p.Label] = p
	}
	for _, pp := range pruned.Pruned {
		twin := byLabel[pp.Label]
		kept := byLabel["pipeII1"+pp.Label[len("pipeII2"):]]
		if twin.Report == nil || kept.Report == nil {
			t.Fatalf("missing full-sweep result for %q or its kept twin", pp.Label)
		}
		if twin.Latency() != kept.Latency() || twin.Area != kept.Area {
			t.Errorf("pruned %q (lat=%d area=%.0f) differs from kept twin (lat=%d area=%.0f)",
				pp.Label, twin.Latency(), twin.Area, kept.Latency(), kept.Area)
		}
	}
}

// TestPrecheckNoRecurrenceKeepsSpace: gemm keeps its accumulator in a
// register across the innermost loop (no loop-invariant memory address is
// both loaded and stored per iteration), so its RecMII floor is 1 and the
// pre-check must keep the whole space.
func TestPrecheckNoRecurrenceKeepsSpace(t *testing.T) {
	res := exploreOpts(t, "gemm", Options{Precheck: true})
	if len(res.Pruned) != 0 {
		t.Errorf("gemm has no memory recurrence; pruned %d point(s): %+v", len(res.Pruned), res.Pruned)
	}
	if len(res.Points) != len(Space()) {
		t.Errorf("want full space %d, got %d", len(Space()), len(res.Points))
	}
}

package dse

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// TestDeclaredFrontierUnchangedByWidthMachinery pins the explorer-level
// compatibility contract of the bitwidth engine: under the declared cost
// model, attaching a width map to the target moves nothing — every evaluated
// point and the whole Pareto frontier render byte-identically. Only an
// explicit -cost-model inferred may change areas.
func TestDeclaredFrontierUnchangedByWidthMachinery(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *mlir.Module { return k.Build(s) }

	plain, err := Explore(build, k.Name, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	// A non-empty width map that can never match a real instruction.
	carrying, err := Explore(build, k.Name,
		hls.DefaultTarget().WithInferredWidths(map[*llvm.Instr]int{{}: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != carrying.String() {
		t.Errorf("declared-model frontier changed by an attached width map:\n--- plain\n%s\n--- carrying\n%s",
			plain, carrying)
	}
	if len(plain.Points) != len(carrying.Points) {
		t.Fatalf("point count diverged: %d vs %d", len(plain.Points), len(carrying.Points))
	}
	for i := range plain.Points {
		p, q := plain.Points[i], carrying.Points[i]
		if p.Label != q.Label || p.Latency() != q.Latency() || p.Area != q.Area {
			t.Errorf("point %d diverged: %s lat=%d area=%g vs %s lat=%d area=%g",
				i, p.Label, p.Latency(), p.Area, q.Label, q.Latency(), q.Area)
		}
	}
}

// TestInferredModelExploresCleanly runs the same sweep under the inferred
// cost model: every configuration must still evaluate (the width analysis
// runs inside synthesis for every point), and since the inferred formulas
// only ever narrow operators, no point's area may exceed its declared twin.
func TestInferredModelExploresCleanly(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *mlir.Module { return k.Build(s) }

	declared, err := Explore(build, k.Name, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	tgt := hls.DefaultTarget()
	tgt.CostModel = hls.CostInferred
	inferred, err := Explore(build, k.Name, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred.Points) != len(declared.Points) {
		t.Fatalf("inferred sweep lost points: %d vs %d", len(inferred.Points), len(declared.Points))
	}
	declaredArea := map[string]float64{}
	declaredLat := map[string]int64{}
	for _, p := range declared.Points {
		declaredArea[p.Label] = p.Area
		declaredLat[p.Label] = p.Latency()
	}
	for _, p := range inferred.Points {
		if p.Area > declaredArea[p.Label] {
			t.Errorf("%s: inferred area %g exceeds declared %g (narrowing must never cost more)",
				p.Label, p.Area, declaredArea[p.Label])
		}
		if p.Latency() != declaredLat[p.Label] {
			t.Errorf("%s: latency moved under the inferred model: %d vs %d",
				p.Label, p.Latency(), declaredLat[p.Label])
		}
	}
}

package dse

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// paretoFrontierQuadratic is the original O(n²) reference implementation
// (all-pairs domination, stable sort, dedup of equal objective pairs).
func paretoFrontierQuadratic(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Latency() != out[j].Latency() {
			return out[i].Latency() < out[j].Latency()
		}
		return out[i].Area < out[j].Area
	})
	var dedup []Point
	for _, p := range out {
		if len(dedup) > 0 {
			last := dedup[len(dedup)-1]
			if last.Latency() == p.Latency() && last.Area == p.Area {
				continue
			}
		}
		dedup = append(dedup, p)
	}
	return dedup
}

func frontierString(ps []Point) string {
	var sb strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&sb, "%s %d %.0f\n", p.Label, p.Latency(), p.Area)
	}
	return sb.String()
}

func syntheticPoint(label string, lat int64, area float64) Point {
	return Point{Label: label, Report: &hls.Report{LatencyCycles: lat}, Area: area}
}

// TestParetoMatchesQuadratic checks the sort-then-sweep frontier against
// the all-pairs reference, on the real explored space and on synthetic
// sets with ties and duplicates.
func TestParetoMatchesQuadratic(t *testing.T) {
	res := explore(t, "gemm")
	if got, want := frontierString(paretoFrontier(res.Points)),
		frontierString(paretoFrontierQuadratic(res.Points)); got != want {
		t.Errorf("explored space: frontiers diverge\nsweep:\n%s\nquadratic:\n%s", got, want)
	}

	synthetic := []Point{
		syntheticPoint("a", 100, 50),
		syntheticPoint("b", 100, 40), // dominates a (same latency, less area)
		syntheticPoint("c", 90, 60),
		syntheticPoint("d", 90, 60), // duplicate objectives: keep first
		syntheticPoint("e", 120, 10),
		syntheticPoint("f", 80, 200),
		syntheticPoint("g", 85, 55),  // dominated by c? no: less area... lat 85<90, area 55<60 dominates c
		syntheticPoint("h", 200, 10), // dominated by e
		syntheticPoint("i", 80, 300), // dominated by f
	}
	if got, want := frontierString(paretoFrontier(synthetic)),
		frontierString(paretoFrontierQuadratic(synthetic)); got != want {
		t.Errorf("synthetic: frontiers diverge\nsweep:\n%s\nquadratic:\n%s", got, want)
	}
}

// exploreSerialReference reproduces the pre-engine serial Explore loop.
func exploreSerialReference(t *testing.T, build func() *mlir.Module, top string, tgt hls.Target) *Result {
	t.Helper()
	res := &Result{}
	for _, cfg := range Space() {
		fr, err := flow.AdaptorFlow(build(), top, cfg.D, tgt)
		if err != nil {
			t.Fatalf("serial reference: %s: %v", cfg.Label, err)
		}
		res.Points = append(res.Points, Point{
			Label:  cfg.Label,
			D:      cfg.D,
			Report: fr.Report,
			Area:   areaOf(fr.Report),
		})
	}
	res.Pareto = paretoFrontier(res.Points)
	return res
}

// TestExploreParallelMatchesSerial is the golden diff: the engine-backed
// sweep must be byte-identical to the serial loop — same points, same
// order, same frontier rendering — at any worker count, cached or not.
func TestExploreParallelMatchesSerial(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *mlir.Module { return k.Build(s) }
	tgt := hls.DefaultTarget()

	want := exploreSerialReference(t, build, k.Name, tgt)
	check := func(name string, got *Result) {
		t.Helper()
		if len(got.Errors) != 0 {
			t.Fatalf("%s: unexpected errors: %v", name, got.Errors)
		}
		if g, w := frontierString(got.Points), frontierString(want.Points); g != w {
			t.Errorf("%s: points diverge from serial\ngot:\n%s\nwant:\n%s", name, g, w)
		}
		if g, w := got.String(), want.String(); g != w {
			t.Errorf("%s: frontier table diverges from serial\ngot:\n%s\nwant:\n%s", name, g, w)
		}
	}

	for _, w := range []int{1, 4} {
		got, err := ExploreWith(build, k.Name, tgt, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("workers=%d", w), got)
	}

	// Cached: second run must be served from the cache and stay identical.
	eng := engine.New(engine.Options{Workers: 4, Cache: true})
	for run := 0; run < 2; run++ {
		got, err := ExploreWith(build, k.Name, tgt, Options{Engine: eng, CacheScope: "MINI"})
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("cached run %d", run), got)
	}
	if st := eng.Stats(); st.CacheHits == 0 {
		t.Errorf("second cached exploration should hit: %+v", st)
	}
}

// TestExplorePartialFailure: a failing configuration is recorded with its
// label and the sweep continues over the rest of the space.
func TestExplorePartialFailure(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	// With a single worker, jobs run in space order; failing the third
	// build call breaks exactly Space()[2].
	calls := 0
	build := func() *mlir.Module {
		calls++
		if calls == 3 {
			return nil // engine rejects a nil module with a per-job error
		}
		return k.Build(s)
	}
	res, err := ExploreWith(build, k.Name, hls.DefaultTarget(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("partial failure must not abort the sweep: %v", err)
	}
	space := Space()
	if len(res.Errors) != 1 {
		t.Fatalf("want 1 point error, got %v", res.Errors)
	}
	if res.Errors[0].Label != space[2].Label {
		t.Errorf("failing label = %q, want %q", res.Errors[0].Label, space[2].Label)
	}
	if len(res.Points) != len(space)-1 {
		t.Errorf("want %d surviving points, got %d", len(space)-1, len(res.Points))
	}
	if len(res.Pareto) == 0 {
		t.Error("partial results should still yield a frontier")
	}
}

// TestExploreAllFail: when nothing evaluates, Explore reports the first
// failure instead of returning an empty result.
func TestExploreAllFail(t *testing.T) {
	build := func() *mlir.Module { return nil }
	_, err := Explore(build, "nope", hls.DefaultTarget())
	if err == nil || !strings.Contains(err.Error(), "no configuration evaluated") {
		t.Errorf("want total-failure error, got %v", err)
	}
}

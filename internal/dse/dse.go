// Package dse implements a ScaleHLS-style design-space explorer on top of
// the adaptor flow — an extension beyond the paper showing what the direct
// IR path buys: with no C++ round trip in the loop, sweeping directive
// configurations is cheap enough to enumerate a whole space and return its
// Pareto frontier.
package dse

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

// Point is one evaluated design.
type Point struct {
	Label  string
	D      flow.Directives
	Report *hls.Report
	// Area is the scalarized resource cost used for Pareto ranking.
	Area float64
}

// Latency returns the point's latency in cycles.
func (p Point) Latency() int64 { return p.Report.LatencyCycles }

// areaOf scalarizes a report's resources into equivalent LUTs (DSP and BRAM
// weighted by their typical LUT-equivalent silicon cost).
func areaOf(r *hls.Report) float64 {
	return float64(r.LUT) + 0.5*float64(r.FF) + 100*float64(r.DSP) + 350*float64(r.BRAM)
}

// Space enumerates the directive configurations to evaluate.
func Space() []struct {
	Label string
	D     flow.Directives
} {
	var out []struct {
		Label string
		D     flow.Directives
	}
	add := func(label string, d flow.Directives) {
		out = append(out, struct {
			Label string
			D     flow.Directives
		}{label, d})
	}
	add("base", flow.Directives{})
	for _, ii := range []int{1, 2} {
		for _, part := range []int{0, 2, 4} {
			for _, flat := range []bool{false, true} {
				d := flow.Directives{Pipeline: true, II: ii, Flatten: flat}
				label := fmt.Sprintf("pipeII%d", ii)
				if part > 0 {
					d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: part, Dim: 0}
					label += fmt.Sprintf("+part%d", part)
				}
				if flat {
					label += "+flat"
				}
				add(label, d)
			}
		}
	}
	for _, u := range []int{2, 4} {
		add(fmt.Sprintf("unroll%d", u), flow.Directives{Unroll: u})
		add(fmt.Sprintf("unroll%d+part%d", u, u), flow.Directives{Unroll: u,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: u, Dim: 0}})
	}
	return out
}

// Result holds the explored space and its Pareto frontier.
type Result struct {
	Points []Point
	// Pareto is the latency/area frontier, sorted by ascending latency.
	Pareto []Point
}

// Explore evaluates the whole directive space for a kernel. build must
// return a fresh module per call (flows mutate their input).
func Explore(build func() *mlir.Module, top string, tgt hls.Target) (*Result, error) {
	res := &Result{}
	for _, cfg := range Space() {
		fr, err := flow.AdaptorFlow(build(), top, cfg.D, tgt)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", cfg.Label, err)
		}
		res.Points = append(res.Points, Point{
			Label:  cfg.Label,
			D:      cfg.D,
			Report: fr.Report,
			Area:   areaOf(fr.Report),
		})
	}
	res.Pareto = paretoFrontier(res.Points)
	return res, nil
}

// dominates reports whether a is at least as good as b in both objectives
// and strictly better in one.
func dominates(a, b Point) bool {
	if a.Latency() > b.Latency() || a.Area > b.Area {
		return false
	}
	return a.Latency() < b.Latency() || a.Area < b.Area
}

// paretoFrontier returns the non-dominated subset sorted by latency.
func paretoFrontier(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency() != out[j].Latency() {
			return out[i].Latency() < out[j].Latency()
		}
		return out[i].Area < out[j].Area
	})
	// Deduplicate identical objective pairs (keep the first label).
	var dedup []Point
	for _, p := range out {
		if len(dedup) > 0 {
			last := dedup[len(dedup)-1]
			if last.Latency() == p.Latency() && last.Area == p.Area {
				continue
			}
		}
		dedup = append(dedup, p)
	}
	return dedup
}

// String renders the frontier as a table.
func (r *Result) String() string {
	s := fmt.Sprintf("%-18s %10s %10s\n", "config", "latency", "area")
	for _, p := range r.Pareto {
		s += fmt.Sprintf("%-18s %10d %10.0f\n", p.Label, p.Latency(), p.Area)
	}
	return s
}

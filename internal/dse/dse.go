// Package dse implements a ScaleHLS-style design-space explorer on top of
// the adaptor flow — an extension beyond the paper showing what the direct
// IR path buys: with no C++ round trip in the loop, sweeping directive
// configurations is cheap enough to enumerate a whole space and return its
// Pareto frontier.
package dse

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/lint"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
	"repro/internal/resilience"
)

// Point is one evaluated design.
type Point struct {
	Label  string
	D      flow.Directives
	Report *hls.Report
	// Area is the scalarized resource cost used for Pareto ranking.
	Area float64
	// Degraded marks a point whose report came from the C++ fallback path
	// after the direct-IR flow failed (engine Fallback option).
	Degraded bool
}

// Latency returns the point's latency in cycles.
func (p Point) Latency() int64 { return p.Report.LatencyCycles }

// areaOf scalarizes a report's resources into equivalent LUTs (DSP and BRAM
// weighted by their typical LUT-equivalent silicon cost).
func areaOf(r *hls.Report) float64 {
	return float64(r.LUT) + 0.5*float64(r.FF) + 100*float64(r.DSP) + 350*float64(r.BRAM)
}

// Area is the exported scalarization, so external sweep drivers (the
// compile-service daemon, thin clients reconstructing frontiers) rank
// points with exactly the ranking Explore uses.
func Area(r *hls.Report) float64 { return areaOf(r) }

// Frontier returns the Pareto frontier of points under the same
// dominance and ordering rules Explore applies — external drivers that
// assemble points themselves must go through this to get byte-identical
// frontiers.
func Frontier(points []Point) []Point { return paretoFrontier(points) }

// Config is one directive configuration of the design space.
type Config struct {
	Label string
	D     flow.Directives
}

// Space enumerates the directive configurations to evaluate.
func Space() []Config {
	var out []Config
	add := func(label string, d flow.Directives) {
		out = append(out, Config{label, d})
	}
	add("base", flow.Directives{})
	for _, ii := range []int{1, 2} {
		for _, part := range []int{0, 2, 4} {
			for _, flat := range []bool{false, true} {
				d := flow.Directives{Pipeline: true, II: ii, Flatten: flat}
				label := fmt.Sprintf("pipeII%d", ii)
				if part > 0 {
					d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: part, Dim: 0}
					label += fmt.Sprintf("+part%d", part)
				}
				if flat {
					label += "+flat"
				}
				add(label, d)
			}
		}
	}
	for _, u := range []int{2, 4} {
		add(fmt.Sprintf("unroll%d", u), flow.Directives{Unroll: u})
		add(fmt.Sprintf("unroll%d+part%d", u, u), flow.Directives{Unroll: u,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: u, Dim: 0}})
	}
	return out
}

// PointError records one configuration that failed to evaluate.
type PointError struct {
	Label string
	Err   error
}

// PrunedPoint records a configuration the feasibility pre-check removed
// from the sweep without evaluating it.
type PrunedPoint struct {
	Label  string
	Reason string
}

// Result holds the explored space and its Pareto frontier.
type Result struct {
	Points []Point
	// Pareto is the latency/area frontier, sorted by ascending latency.
	Pareto []Point
	// Errors lists configurations that failed; Points holds only the
	// successes, in space order.
	Errors []PointError
	// Pruned lists configurations the feasibility pre-check skipped (only
	// populated with Options.Precheck), in space order.
	Pruned []PrunedPoint
	// Resumed counts points served from the journal instead of evaluated
	// (Options.Journal).
	Resumed int
	// Stats snapshots the evaluation engine's counters (cache hits,
	// summed per-phase compute time) for this exploration's engine.
	Stats engine.Stats
}

// Options tunes how Explore fans the space across the evaluation engine.
type Options struct {
	// Workers bounds the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache reuses results for configurations already evaluated (only
	// useful with a shared Engine or repeated exploration).
	Cache bool
	// FailFast restores the legacy abort-on-first-error policy; the
	// default records the failing label and keeps sweeping.
	FailFast bool
	// Timeout bounds each configuration's wall time (0 = none).
	Timeout time.Duration
	// CacheScope salts the cache key for inputs whose identity is not
	// captured by the top name alone (size presets, file hashes).
	CacheScope string
	// Incremental threads the per-unit incremental store through the
	// evaluation engine: repeated sweeps replay unchanged pipeline
	// prefixes from stored unit snapshots, so a re-exploration after a
	// directive or space change recompiles only what the change touched.
	// The -incremental flag of hls-dse.
	Incremental bool
	// IncrStore is the record store used under Incremental; nil uses the
	// process-wide default. An incr.DiskStore (-incr-store) makes sweeps
	// warm-start across processes.
	IncrStore incr.Store
	// Engine, when non-nil, evaluates the jobs (sharing its cache and
	// stats); Workers/Cache/Incremental/IncrStore are then ignored.
	Engine *engine.Engine
	// Journal, when non-nil, is the write-ahead log for crash-resumable
	// sweeps: every completed point is appended (and synced) the moment its
	// worker finishes, and points whose key is already journaled are served
	// from it without re-evaluation. A killed sweep rerun against the same
	// journal file completes the remainder and returns the Pareto frontier
	// a single uninterrupted run would have — byte-identical, because
	// points are reconstructed in space order regardless of which side of
	// the crash produced them.
	Journal *resilience.Journal
	// Precheck runs the lint feasibility pre-check before the sweep: one
	// adaptor-flow preparation (no scheduling) computes per-loop II bounds —
	// the alias-filtered recurrence floor plus memory-access counts priced
	// into a per-group resource floor under each group's partition widths —
	// and directive points that cannot produce a distinct schedule (pipeline
	// IIs below their group's floor other than the smallest) are pruned
	// without evaluation. Pruning never changes the Pareto frontier: the
	// kept representative of each pruned group evaluates to the identical
	// report. Off by default.
	Precheck bool
	// RemoteSpec, when non-nil, stamps every job with the serializable
	// identity of the swept input, so an engine configured with
	// Options.Remote can ship points to a compile-service daemon and fall
	// back to embedded evaluation when it is unreachable.
	RemoteSpec *engine.RemoteSpec
	// Oracle samples the differential semantic oracle across the sweep:
	// when N > 0, every Nth configuration by space index (idx % N == 0)
	// runs with flow.Options.VerifySemantics, re-executing the IR after
	// every pipeline unit against the pristine kernel's reference run. A
	// 1-in-N spot check catches a directive-dependent miscompile without
	// paying the oracle on the whole space; Oracle = 1 verifies every
	// point. Sampled points carry distinct cache/journal keys from their
	// unverified twins.
	Oracle int
}

// Explore evaluates the whole directive space for a kernel in parallel.
// build must return a fresh module per call (flows mutate their input; the
// engine enforces this). Failing configurations are recorded in
// Result.Errors and the sweep continues; the returned error is non-nil
// only when nothing evaluated successfully.
func Explore(build func() *mlir.Module, top string, tgt hls.Target) (*Result, error) {
	return ExploreWith(build, top, tgt, Options{})
}

// ExploreWith is Explore with explicit engine options.
func ExploreWith(build func() *mlir.Module, top string, tgt hls.Target, opts Options) (*Result, error) {
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{Workers: opts.Workers, Cache: opts.Cache,
			Incremental: opts.Incremental, IncrStore: opts.IncrStore})
	}
	space := Space()
	var pruned []PrunedPoint
	if opts.Precheck {
		space, pruned = pruneInfeasible(space, build, top, tgt)
	}
	res := &Result{Pruned: pruned}
	// slots holds each configuration's point at its space index, whether it
	// came from the journal or from this run's engine — reconstruction in
	// space order is what makes a resumed sweep's frontier byte-identical
	// to an uninterrupted one.
	slots := make([]*Point, len(space))
	var jobs []engine.Job
	var jobSlot []int
	for i, cfg := range space {
		job := engine.Job{
			Label:      cfg.Label,
			Kind:       engine.KindAdaptor,
			Build:      build,
			Top:        top,
			Directives: cfg.D,
			Target:     tgt,
			CacheScope: opts.CacheScope,
			Spec:       opts.RemoteSpec,
		}
		if opts.Oracle > 0 && i%opts.Oracle == 0 {
			job.VerifySemantics = true
		}
		if opts.Journal != nil {
			var e journalEntry
			if ok, jerr := opts.Journal.Get(engine.Key(job), &e); ok && jerr == nil {
				slots[i] = &Point{Label: cfg.Label, D: cfg.D, Report: e.Report,
					Area: e.Area, Degraded: e.Degraded}
				res.Resumed++
				continue
			}
		}
		jobs = append(jobs, job)
		jobSlot = append(jobSlot, i)
	}
	batch := engine.BatchOptions{
		ContinueOnError: !opts.FailFast,
		Timeout:         opts.Timeout,
	}
	if opts.Journal != nil {
		// Write-ahead: the worker journals each success before the batch
		// returns, so a kill mid-sweep loses at most in-flight work.
		batch.OnResult = func(i int, r engine.JobResult) {
			if r.Err != nil || r.Res == nil {
				return
			}
			_ = opts.Journal.Put(engine.Key(jobs[i]), journalEntry{
				Label: r.Label, Degraded: r.Degraded,
				Report: r.Res.Report, Area: areaOf(r.Res.Report),
			})
		}
	}
	rs, err := eng.RunBatch(context.Background(), jobs, batch)
	if err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	for pos, r := range rs {
		i := jobSlot[pos]
		if r.Err != nil {
			res.Errors = append(res.Errors, PointError{Label: r.Label, Err: r.Err})
			continue
		}
		slots[i] = &Point{Label: r.Label, D: space[i].D, Report: r.Res.Report,
			Area: areaOf(r.Res.Report), Degraded: r.Degraded}
	}
	for _, p := range slots {
		if p != nil {
			res.Points = append(res.Points, *p)
		}
	}
	if len(res.Points) == 0 {
		if len(res.Errors) == 0 {
			return nil, fmt.Errorf("dse: empty design space")
		}
		first := res.Errors[0]
		return nil, fmt.Errorf("dse: no configuration evaluated; first failure %s: %w", first.Label, first.Err)
	}
	res.Pareto = paretoFrontier(res.Points)
	res.Stats = eng.Stats()
	return res, nil
}

// journalEntry is the persisted record of one completed point. The report
// is stored whole so a resumed sweep rebuilds points without rerunning
// flows.
type journalEntry struct {
	Label    string      `json:"label"`
	Degraded bool        `json:"degraded,omitempty"`
	Report   *hls.Report `json:"report"`
	Area     float64     `json:"area"`
}

// pruneInfeasible removes II-infeasible pipeline points from the space: one
// un-scheduled flow preparation computes per-loop II bounds
// (lint.PipelineFloors) — the alias-filtered recurrence floor plus raw
// memory-access counts. From the counts, each directive group (identical
// configurations except the requested II) gets its own resource floor
// ceil(accesses/ports) under that group's partition widths, priced with the
// same formula the scheduler applies. Within a group, every request at or
// below the group floor max(RecMII, ResMII) except the smallest is pruned —
// the scheduler would produce byte-identical reports for all of them
// (achieved II is max(request, RecMII, ResMII)), and keeping the smallest
// (which comes first in space order) preserves the Pareto frontier's labels
// under the stable tie-breaking sort. Any pre-check failure keeps the full
// space: pruning is an optimization, never a gate.
func pruneInfeasible(space []Config, build func() *mlir.Module, top string, tgt hls.Target) ([]Config, []PrunedPoint) {
	lm, err := flow.PrepareLLVM(build(), top, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		return space, nil
	}
	floors, ok := lint.PipelineFloors(lm, top, tgt)
	if !ok {
		return space, nil
	}
	// portsFor mirrors hls.Target.PartitionPorts for the sweep's uniform
	// all-parameter partition directive; local allocas always run at the
	// default width.
	portsFor := func(d flow.Directives) int {
		if d.Partition == nil {
			return tgt.MemPorts
		}
		switch d.Partition.Kind {
		case "complete":
			return 1 << 20
		case "cyclic", "block":
			if d.Partition.Factor > 1 {
				return tgt.MemPorts * d.Partition.Factor
			}
		}
		return tgt.MemPorts
	}
	// groupFloor returns min over pipelined loops of max(RecMII, ResMII)
	// under the group's ports, plus that loop's two components for the
	// pruning reason. Access counts are partition-independent, so the one
	// prepared module prices every group.
	groupFloor := func(d flow.Directives) (floor, rec, res int) {
		ports := portsFor(d)
		for _, lf := range floors {
			r := 1
			for _, n := range lf.ParamAccesses {
				if m := (n + ports - 1) / ports; m > r {
					r = m
				}
			}
			if n := lf.LocalAccesses; n > 0 {
				if m := (n + tgt.MemPorts - 1) / tgt.MemPorts; m > r {
					r = m
				}
			}
			f := lf.RecMII
			if r > f {
				f = r
			}
			if floor == 0 || f < floor {
				floor, rec, res = f, lf.RecMII, r
			}
		}
		return floor, rec, res
	}
	groupKey := func(d flow.Directives) string {
		part := ""
		if d.Partition != nil {
			part = fmt.Sprintf("%s,%d,%d", d.Partition.Kind, d.Partition.Factor, d.Partition.Dim)
		}
		return fmt.Sprintf("u%d|p%s|f%v|df%v", d.Unroll, part, d.Flatten, d.Dataflow)
	}
	reqII := func(d flow.Directives) int {
		if d.II <= 0 {
			return 1
		}
		return d.II
	}
	keepII := map[string]int{}
	for _, cfg := range space {
		if !cfg.D.Pipeline {
			continue
		}
		floor, _, _ := groupFloor(cfg.D)
		if reqII(cfg.D) > floor {
			continue
		}
		k := groupKey(cfg.D)
		if cur, seen := keepII[k]; !seen || reqII(cfg.D) < cur {
			keepII[k] = reqII(cfg.D)
		}
	}
	var kept []Config
	var pruned []PrunedPoint
	for _, cfg := range space {
		if cfg.D.Pipeline {
			ii := reqII(cfg.D)
			floor, rec, res := groupFloor(cfg.D)
			if m, seen := keepII[groupKey(cfg.D)]; seen && ii <= floor && ii > m {
				reason := fmt.Sprintf("requested II=%d is below the dependence-implied floor RecMII=%d; schedule identical to the kept II=%d point",
					ii, floor, m)
				if res > rec {
					reason = fmt.Sprintf("requested II=%d is below the port-implied floor ResMII=%d (RecMII=%d) under this group's partitioning; schedule identical to the kept II=%d point",
						ii, res, rec, m)
				}
				pruned = append(pruned, PrunedPoint{Label: cfg.Label, Reason: reason})
				continue
			}
		}
		kept = append(kept, cfg)
	}
	return kept, pruned
}

// dominates reports whether a is at least as good as b in both objectives
// and strictly better in one.
func dominates(a, b Point) bool {
	if a.Latency() > b.Latency() || a.Area > b.Area {
		return false
	}
	return a.Latency() < b.Latency() || a.Area < b.Area
}

// paretoFrontier returns the non-dominated subset sorted by ascending
// latency, one point per objective pair, in O(n log n): after a stable
// sort by (latency, area) a point survives iff its area is strictly below
// every area seen so far — anything else is dominated by (or duplicates)
// an earlier point with latency <= its own.
func paretoFrontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Latency() != sorted[j].Latency() {
			return sorted[i].Latency() < sorted[j].Latency()
		}
		return sorted[i].Area < sorted[j].Area
	})
	var out []Point
	for _, p := range sorted {
		if len(out) == 0 || p.Area < out[len(out)-1].Area {
			out = append(out, p)
		}
	}
	return out
}

// String renders the frontier as a table. Points the C++ fallback path
// produced are marked degraded — their numbers are the baseline flow's,
// not the direct path's.
func (r *Result) String() string {
	s := fmt.Sprintf("%-18s %10s %10s\n", "config", "latency", "area")
	for _, p := range r.Pareto {
		mark := ""
		if p.Degraded {
			mark = "  degraded"
		}
		s += fmt.Sprintf("%-18s %10d %10.0f%s\n", p.Label, p.Latency(), p.Area, mark)
	}
	return s
}

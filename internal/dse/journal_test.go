package dse

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

func gemmBuilder(t *testing.T) func() *mlir.Module {
	t.Helper()
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	return func() *mlir.Module { return k.Build(s) }
}

// TestJournalResumeByteIdenticalFrontier is the crash-resume acceptance
// check: a sweep that dies partway (here: an injected fault fails half the
// space, then the process "restarts" with a fresh engine) resumes from its
// write-ahead journal, evaluates only the remainder, and renders a Pareto
// frontier byte-identical to an uninterrupted run's.
func TestJournalResumeByteIdenticalFrontier(t *testing.T) {
	build := gemmBuilder(t)
	tgt := hls.DefaultTarget()

	// Reference: one uninterrupted sweep, no journal.
	ref, err := ExploreWith(build, "gemm", tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refTable := ref.String()

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j1, err := resilience.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// First run: every odd-indexed configuration dies before evaluating —
	// the journal captures only the survivors, write-ahead.
	n := 0
	killed := 0
	eng := engine.New(engine.Options{
		ContinueOnError: true,
		InjectFault: func(job engine.Job) error {
			n++
			if n%2 == 0 {
				killed++
				return errors.New("injected crash")
			}
			return nil
		},
	})
	r1, err := ExploreWith(build, "gemm", tgt, Options{Engine: eng, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Errors) != killed || killed == 0 {
		t.Fatalf("first run: %d errors, injected %d", len(r1.Errors), killed)
	}
	if j1.Len() != len(r1.Points) {
		t.Fatalf("journal holds %d entries, run produced %d points", j1.Len(), len(r1.Points))
	}
	j1.Close()

	// Simulate the crash aftermath: a torn half-written line at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn-mid-app`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second run: fresh process, same journal file. Only the previously
	// failed configurations evaluate.
	j2, err := resilience.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(r1.Points) {
		t.Fatalf("reopened journal lost entries: %d vs %d", j2.Len(), len(r1.Points))
	}
	r2, err := ExploreWith(build, "gemm", tgt, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Resumed != len(r1.Points) {
		t.Errorf("resumed %d points, journal held %d", r2.Resumed, len(r1.Points))
	}
	if len(r2.Points) != len(ref.Points) || len(r2.Errors) != 0 {
		t.Fatalf("resumed sweep incomplete: %d points %d errors, want %d/0",
			len(r2.Points), len(r2.Errors), len(ref.Points))
	}
	if got := r2.String(); got != refTable {
		t.Errorf("resumed frontier differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", got, refTable)
	}
	for i := range ref.Points {
		if r2.Points[i].Label != ref.Points[i].Label {
			t.Fatalf("point order diverged at %d: %s vs %s", i, r2.Points[i].Label, ref.Points[i].Label)
		}
	}
	// Third run: everything resumes, nothing evaluates.
	r3, err := ExploreWith(build, "gemm", tgt, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Resumed != len(ref.Points) || r3.Stats.Jobs != 0 {
		t.Errorf("full resume still evaluated: resumed=%d jobs=%d", r3.Resumed, r3.Stats.Jobs)
	}
	if r3.String() != refTable {
		t.Error("fully-resumed frontier differs from reference")
	}
}

// TestDegradedPointsAreMarked: with the engine fallback on, a direct-path
// failure degrades only its own point, the point carries the flag, and the
// frontier table marks it.
func TestDegradedPointsAreMarked(t *testing.T) {
	build := gemmBuilder(t)
	eng := engine.New(engine.Options{
		ContinueOnError: true,
		Fallback:        true,
		FlowFaultHook: func(job engine.Job, flowName, stage, pass string) {
			if job.Label == "base" && flowName == "adaptor" && pass == "adaptor" {
				panic("injected")
			}
		},
	})
	res, err := ExploreWith(build, "gemm", hls.DefaultTarget(), Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("fallback should absorb the failure: %v", res.Errors)
	}
	var degraded []string
	for _, p := range res.Points {
		if p.Degraded {
			degraded = append(degraded, p.Label)
		}
	}
	if len(degraded) != 1 || degraded[0] != "base" {
		t.Fatalf("want exactly [base] degraded, got %v", degraded)
	}
	onFrontier := false
	for _, p := range res.Pareto {
		if p.Label == "base" {
			onFrontier = p.Degraded
		}
	}
	if onFrontier && !strings.Contains(res.String(), "degraded") {
		t.Error("frontier table does not mark the degraded point")
	}
}

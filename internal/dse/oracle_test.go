package dse

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// TestOracleSamplingCleanSweep: a 1-in-4 oracle sweep over a correct
// pipeline evaluates the whole space with no errors and an unchanged
// frontier.
func TestOracleSamplingCleanSweep(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *mlir.Module { return k.Build(s) }
	tgt := hls.DefaultTarget()
	plain, err := ExploreWith(build, k.Name, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ExploreWith(build, k.Name, tgt, Options{Oracle: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Errors) != 0 {
		t.Fatalf("oracle flagged a correct sweep: %+v", sampled.Errors)
	}
	if len(sampled.Points) != len(plain.Points) {
		t.Errorf("sampling changed coverage: %d vs %d points", len(sampled.Points), len(plain.Points))
	}
	if len(sampled.Pareto) != len(plain.Pareto) {
		t.Errorf("sampling changed the frontier: %d vs %d", len(sampled.Pareto), len(plain.Pareto))
	}
}

// TestOracleCatchesMiscompileMidSweep: a miscompile injected into one
// configuration's pipeline is caught by the sampled oracle, recorded as a
// point error typed KindMiscompile, and the rest of the sweep completes.
func TestOracleCatchesMiscompileMidSweep(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	victim := Space()[0].Label
	eng := engine.New(engine.Options{
		ContinueOnError: true,
		MiscompileHook: func(j engine.Job) string {
			if j.Label == victim {
				return "llvm-opt/dce"
			}
			return ""
		},
	})
	res, err := ExploreWith(func() *mlir.Module { return k.Build(s) }, k.Name,
		hls.DefaultTarget(), Options{Engine: eng, Oracle: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("want exactly the victim config to fail, got %d errors: %+v", len(res.Errors), res.Errors)
	}
	pe := res.Errors[0]
	if pe.Label != victim {
		t.Errorf("failed label = %s, want %s", pe.Label, victim)
	}
	pf, ok := resilience.AsPassFailure(pe.Err)
	if !ok || pf.Kind != resilience.KindMiscompile {
		t.Fatalf("error not typed miscompile: %v", pe.Err)
	}
	if got := pf.Stage + "/" + pf.Pass; got != "llvm-opt/dce" {
		t.Errorf("localized to %s, want llvm-opt/dce", got)
	}
	if len(res.Points) != len(Space())-1 {
		t.Errorf("sweep did not continue past the miscompile: %d points", len(res.Points))
	}
	if got := eng.Stats().Miscompiles; got != 1 {
		t.Errorf("stats miscompiles = %d, want 1", got)
	}
	if !strings.Contains(res.Stats.String(), "miscompiles=1") {
		t.Errorf("stats string does not surface the miscompile: %q", res.Stats.String())
	}
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/llvm"
)

// checkSSADominance verifies that every instruction operand's definition
// dominates its use. llvm.Verify checks name uniqueness and phi/pred
// consistency but not dominance, so a pass that hoists a use above its def
// (or leaves a use of an instruction in a deleted block) passes Verify and
// miscompiles downstream; this check catches it at the offending pass.
func checkSSADominance(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "ssa-dominance"
	for _, b := range ctx.F.Blocks {
		if !ctx.CFG.Reachable(b) {
			continue // dominance is vacuous in dead code
		}
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				d, ok := a.(*llvm.Instr)
				if !ok {
					continue
				}
				db := d.Parent
				if db == nil || db.Parent != ctx.F {
					out = append(out, ctx.diag(diag.SevError, check, b, in,
						fmt.Sprintf("operand %s is defined in a block no longer attached to @%s",
							d.Ident(), ctx.F.Name),
						"the pass that removed the defining block must also rewrite its uses"))
					continue
				}
				if !ctx.CFG.Reachable(db) {
					out = append(out, ctx.diag(diag.SevError, check, b, in,
						fmt.Sprintf("operand %s is defined in unreachable block %%%s but used in reachable code",
							d.Ident(), db.Name), ""))
					continue
				}
				if in.Op == llvm.OpPhi {
					// A phi use is live on the incoming edge: the def must
					// dominate the incoming block's exit.
					pb := in.Blocks[ai]
					if pb == nil || !ctx.CFG.Reachable(pb) {
						continue
					}
					if !ctx.Dom.Dominates(db, pb) {
						out = append(out, ctx.diag(diag.SevError, check, b, in,
							fmt.Sprintf("phi incoming %s from %%%s is not dominated by its definition in %%%s",
								d.Ident(), pb.Name, db.Name), ""))
					}
					continue
				}
				if db == b {
					if ctx.instrPos[d] >= ctx.instrPos[in] {
						out = append(out, ctx.diag(diag.SevError, check, b, in,
							fmt.Sprintf("operand %s is used before its definition later in %%%s",
								d.Ident(), b.Name), ""))
					}
					continue
				}
				if !ctx.Dom.Dominates(db, b) {
					out = append(out, ctx.diag(diag.SevError, check, b, in,
						fmt.Sprintf("operand %s (defined in %%%s) does not dominate this use in %%%s",
							d.Ident(), db.Name, b.Name), ""))
				}
			}
		}
	}
	return out
}

package lint

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// checkDirectives lints the HLS directives attached to the LLVM module:
// loop metadata whose request the scheduler cannot honor (pipeline II below
// the dependence-implied RecMII, unroll factors that do not divide the trip
// count), directives the scheduler silently ignores (pipeline on a
// non-innermost loop, II without pipeline, conflicting pipeline+unroll,
// metadata on an ambiguous multi-latch loop), and array-partition specs
// inconsistent with the arrays' static shapes.
func checkDirectives(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	for _, l := range ctx.Loops.Loops {
		out = append(out, lintLoopMD(ctx, l)...)
	}
	out = append(out, lintPartitions(ctx)...)
	return out
}

func lintLoopMD(ctx *FuncContext, l *analysis.Loop) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "hls-directives"
	if len(l.Latches) > 1 {
		for _, latch := range l.Latches {
			if t := latch.Terminator(); t != nil && t.Loop != nil {
				out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
					fmt.Sprintf("loop %%%s has %d back edges; latch metadata is ambiguous and dropped",
						l.Header.Name, len(l.Latches)),
					"restructure the loop to a single latch before attaching directives"))
				break
			}
		}
	}
	md := l.MD
	if md == nil {
		return out
	}
	if md.Pipeline && !l.IsInnermost() {
		out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
			fmt.Sprintf("hls.pipeline on non-innermost loop %%%s is ignored by the scheduler", l.Header.Name),
			"pipeline the innermost loop, or flatten the nest first"))
	}
	if md.II > 0 && !md.Pipeline {
		out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
			fmt.Sprintf("hls.ii=%d on loop %%%s without hls.pipeline has no effect", md.II, l.Header.Name), ""))
	}
	if md.Pipeline && md.Unroll != 0 {
		out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
			fmt.Sprintf("loop %%%s requests both pipeline and unroll; the scheduler pipelines and ignores the unroll", l.Header.Name),
			"drop one of the two directives"))
	}
	if md.Pipeline && l.IsInnermost() {
		rec := ctx.recMIIOf(l)
		want := md.II
		if want <= 0 {
			want = 1
		}
		if want < rec {
			out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
				fmt.Sprintf("requested II=%d is below the dependence-implied RecMII=%d; achieved II will be %d",
					want, rec, rec),
				fmt.Sprintf("request II=%d, or break the recurrence feeding the store", rec)))
		}
	}
	if md.Unroll > 1 && !md.Pipeline {
		if trip, ok := analysis.TripCount(l); ok && trip > 0 {
			if int64(md.Unroll) > trip {
				out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
					fmt.Sprintf("unroll factor %d exceeds the loop trip count %d", md.Unroll, trip),
					fmt.Sprintf("use full unrolling or a factor of at most %d", trip)))
			} else if trip%int64(md.Unroll) != 0 {
				out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
					fmt.Sprintf("unroll factor %d does not divide the trip count %d; a remainder loop is required",
						md.Unroll, trip),
					"pick a factor dividing the trip count to avoid the epilogue"))
			}
		}
	}
	if md.Flatten && l.IsInnermost() {
		out = append(out, ctx.diag(diag.SevWarning, check, l.Header, nil,
			fmt.Sprintf("hls.flatten on innermost loop %%%s has nothing to flatten", l.Header.Name), ""))
	}
	return out
}

// lintPartitions validates array-partition attributes against the arrays'
// static shapes, as recorded by the adaptor (hls.array.argN) or visible in
// the parameter type.
func lintPartitions(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "hls-directives"
	for i := range ctx.F.Params {
		spec := ctx.F.Attrs[fmt.Sprintf("hls.array_partition.arg%d", i)]
		if spec == "" {
			continue
		}
		kind, factor, dim := hls.ParsePartitionSpec(spec)
		name := fmt.Sprintf("arg%d", i)
		switch kind {
		case "complete":
			continue // registers; factor/dim are irrelevant
		case "cyclic", "block":
		default:
			out = append(out, ctx.diag(diag.SevWarning, check, nil, nil,
				fmt.Sprintf("array partition on %s has unknown kind %q", name, kind),
				"use cyclic, block, or complete"))
			continue
		}
		if factor < 2 {
			out = append(out, ctx.diag(diag.SevWarning, check, nil, nil,
				fmt.Sprintf("array partition on %s has factor %d, which does not partition anything", name, factor), ""))
			continue
		}
		dims := arrayShape(ctx.F, i)
		if len(dims) == 0 {
			continue // shape unknown: nothing to validate against
		}
		if dim < 0 || dim >= len(dims) {
			out = append(out, ctx.diag(diag.SevWarning, check, nil, nil,
				fmt.Sprintf("array partition on %s names dimension %d but the array has %d dimension(s)",
					name, dim, len(dims)), ""))
			continue
		}
		size := dims[dim]
		if int64(factor) > size {
			out = append(out, ctx.diag(diag.SevWarning, check, nil, nil,
				fmt.Sprintf("array partition factor %d on %s exceeds dimension %d of size %d",
					factor, name, dim, size),
				"use complete partitioning instead"))
		} else if size%int64(factor) != 0 {
			out = append(out, ctx.diag(diag.SevWarning, check, nil, nil,
				fmt.Sprintf("array partition factor %d on %s does not divide dimension %d of size %d; banks will be uneven",
					factor, name, dim, size),
				fmt.Sprintf("pick a factor dividing %d", size)))
		}
	}
	return out
}

// arrayShape returns the static dimensions of parameter i: the adaptor's
// hls.array.argN attribute ("NxM") when present, else the dimensions read
// off a pointer-to-array parameter type.
func arrayShape(f *llvm.Function, i int) []int64 {
	if s := f.Attrs[fmt.Sprintf("hls.array.arg%d", i)]; s != "" {
		var dims []int64
		for _, part := range strings.Split(s, "x") {
			n, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return nil
			}
			dims = append(dims, n)
		}
		return dims
	}
	ty := f.Params[i].Ty
	if !ty.IsPtr() {
		return nil
	}
	var dims []int64
	for t := ty.Elem; t != nil && t.IsArray(); t = t.Elem {
		dims = append(dims, t.N)
	}
	return dims
}

package lint

import (
	"fmt"

	"repro/internal/bitwidth"
	"repro/internal/diag"
	"repro/internal/llvm"
)

// Width checks: lints driven by the bitwidth-inference engine (known bits
// fused with intervals, plus backward demanded bits). They follow the house
// rule of the other value-range checks — silent when the analysis proves
// nothing, so data-dependent code never drowns in "unknown" findings.

// Bitwidth returns the function's bitwidth analysis (lazily computed).
func (ctx *FuncContext) Bitwidth() *bitwidth.Analysis {
	if ctx.bw == nil {
		ctx.bw = bitwidth.Analyze(ctx.F)
	}
	return ctx.bw
}

// typeRange returns the signed value range of an integer type in the 64-bit
// representation.
func typeRange(ty *llvm.Type) (lo, hi int64, ok bool) {
	if ty == nil || !ty.IsInt() || ty.Bits <= 0 || ty.Bits >= 64 {
		return 0, 0, false
	}
	hi = int64(1)<<uint(ty.Bits-1) - 1
	return -hi - 1, hi, true
}

// signedBounds returns the signed representation bounds of an integer type
// (the full int64 range for i64 and non-integer types).
func signedBounds(ty *llvm.Type) (lo, hi int64) {
	if l, h, ok := typeRange(ty); ok {
		return l, h
	}
	return -int64(^uint64(0)>>1) - 1, int64(^uint64(0) >> 1)
}

func satAddI(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return int64(^uint64(0) >> 1)
		}
		return -int64(^uint64(0)>>1) - 1
	}
	return s
}

func satMulI(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return int64(^uint64(0) >> 1)
		}
		return -int64(^uint64(0)>>1) - 1
	}
	return p
}

// checkOverflowPossible flags add/sub/mul whose unclamped result range, from
// the fused bitwidth ranges of the operands, leaves the declared type: the
// operation can wrap on some input the analysis could not exclude. Unbounded
// operands stay silent.
func checkOverflowPossible(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "overflow-possible"
	bw := ctx.Bitwidth()
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpAdd && in.Op != llvm.OpSub && in.Op != llvm.OpMul {
				continue
			}
			tyLo, tyHi, narrow := typeRange(in.Ty)
			if !narrow {
				continue // i64 arithmetic wraps only at the representation edge
			}
			aLo, aHi, aOK := bw.RangeAt(b, in.Args[0])
			bLo, bHi, bOK := bw.RangeAt(b, in.Args[1])
			if !aOK || !bOK {
				continue
			}
			// Silent when an operand is unbounded within its own type: the
			// analysis proved nothing beyond the declaration.
			var lo, hi int64
			switch in.Op {
			case llvm.OpAdd:
				lo, hi = satAddI(aLo, bLo), satAddI(aHi, bHi)
			case llvm.OpSub:
				lo, hi = satAddI(aLo, -bHi), satAddI(aHi, -bLo)
			case llvm.OpMul:
				lo, hi = satMulI(aLo, bLo), satMulI(aLo, bLo)
				for _, p := range []int64{satMulI(aLo, bHi), satMulI(aHi, bLo), satMulI(aHi, bHi)} {
					if p < lo {
						lo = p
					}
					if p > hi {
						hi = p
					}
				}
			}
			if lo >= tyLo && hi <= tyHi {
				continue // proven wrap-free
			}
			if (aLo <= tyLo && aHi >= tyHi) || (bLo <= tyLo && bHi >= tyHi) {
				continue // an operand is unbounded within its type: stay silent
			}
			d := ctx.diag(diag.SevWarning, check, b, in,
				fmt.Sprintf("%s on i%d can wrap: result range [%d, %d] leaves [%d, %d]",
					in.Op, in.Ty.Bits, lo, hi, tyLo, tyHi),
				"widen the type or tighten the operand ranges with a guard the analysis can see")
			d.Explanation = fmt.Sprintf("operand ranges: %s in [%d, %d], %s in [%d, %d]; unclamped %s range [%d, %d] exceeds i%d",
				in.Args[0].Ident(), aLo, aHi, in.Args[1].Ident(), bLo, bHi, in.Op, lo, hi, in.Ty.Bits)
			out = append(out, d)
		}
	}
	return out
}

// checkTruncatingStore flags stores of a truncated value whose pre-trunc
// range does not fit the stored width: high bits the producer computed are
// silently dropped at the memory boundary.
func checkTruncatingStore(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "truncating-store"
	bw := ctx.Bitwidth()
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpStore {
				continue
			}
			tr, ok := in.Args[0].(*llvm.Instr)
			if !ok || tr.Op != llvm.OpTrunc {
				continue
			}
			tyLo, tyHi, narrow := typeRange(tr.Ty)
			if !narrow {
				continue
			}
			lo, hi, live := bw.RangeAt(tr.Parent, tr.Args[0])
			if !live {
				continue
			}
			if srcLo, srcHi := signedBounds(tr.Args[0].Type()); lo <= srcLo && hi >= srcHi {
				continue // source unbounded within its type: nothing proven
			}
			if lo >= tyLo && hi <= tyHi {
				continue // value proven to fit the stored width
			}
			d := ctx.diag(diag.SevWarning, check, b, in,
				fmt.Sprintf("store truncates %s from [%d, %d] into i%d [%d, %d]",
					tr.Args[0].Ident(), lo, hi, tr.Ty.Bits, tyLo, tyHi),
				"store the full width or prove the value narrow with a mask or guard")
			d.Explanation = fmt.Sprintf("inferred range of %s before the trunc: [%d, %d]; i%d holds [%d, %d]",
				tr.Args[0].Ident(), lo, hi, tr.Ty.Bits, tyLo, tyHi)
			out = append(out, d)
		}
	}
	return out
}

// checkRedundantMask flags `and x, C` where the known bits of x prove every
// bit C clears is already zero: the mask is a no-op occupying LUTs.
func checkRedundantMask(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "redundant-mask"
	bw := ctx.Bitwidth()
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpAnd || len(in.Args) != 2 {
				continue
			}
			for i := 0; i < 2; i++ {
				c, ok := in.Args[i].(*llvm.ConstInt)
				if !ok {
					continue
				}
				x := in.Args[1-i]
				kx := bw.KnownAt(b, x)
				// Bits the mask would clear, within the operand's width.
				cleared := ^uint64(c.Val)
				if ty := in.Ty; ty != nil && ty.IsInt() && ty.Bits > 0 && ty.Bits < 64 {
					cleared &= uint64(1)<<uint(ty.Bits) - 1
				}
				if cleared == 0 || cleared&^kx.Zero != 0 {
					continue // mask is all-ones, or some cleared bit might be set
				}
				d := ctx.diag(diag.SevInfo, check, b, in,
					fmt.Sprintf("mask %s & %d is a no-op: every cleared bit of %s is already known zero",
						x.Ident(), c.Val, x.Ident()),
					"delete the and; it costs LUTs without changing any value")
				d.Explanation = fmt.Sprintf("known bits of %s: %s; mask clears %#x, all known zero",
					x.Ident(), kx, cleared)
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// checkRedundantExt flags zext/sext whose extended bits no consumer ever
// observes: every demanded bit of the result lies inside the source width,
// so the extension is pure wiring that a narrower datapath would avoid.
func checkRedundantExt(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "redundant-ext"
	bw := ctx.Bitwidth()
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpZExt && in.Op != llvm.OpSExt {
				continue
			}
			srcTy := in.Args[0].Type()
			if srcTy == nil || !srcTy.IsInt() || srcTy.Bits <= 0 || srcTy.Bits >= 64 {
				continue
			}
			d := bw.Demanded(in)
			if d == 0 {
				continue // dead ext: dead-code findings belong to other checks
			}
			srcMask := uint64(1)<<uint(srcTy.Bits) - 1
			if d&^srcMask != 0 {
				continue // some consumer reads the extended bits
			}
			dg := ctx.diag(diag.SevInfo, check, b, in,
				fmt.Sprintf("%s of %s is redundant: no consumer observes bits above the source's %d",
					in.Op, in.Args[0].Ident(), srcTy.Bits),
				"use the narrow value directly; the extension only feeds truncating consumers")
			dg.Explanation = fmt.Sprintf("demanded bits of %s: %#x, all inside the %d-bit source width",
				in.Name, d, srcTy.Bits)
			out = append(out, dg)
		}
	}
	return out
}

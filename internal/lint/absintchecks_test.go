package lint

import (
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/llvm"
)

func TestDivByZeroFiringConst(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		x := b.Add(llvm.CI(llvm.I64(), 7), llvm.CI(llvm.I64(), 1))
		b.SDiv(x, llvm.CI(llvm.I64(), 0))
	})
	ds := runCheck(modOf(f), "div-by-zero")
	if len(ds) != 1 || ds[0].Severity != diag.SevError {
		t.Fatalf("want 1 error, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "always zero") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
	if ds[0].Explanation == "" || ds[0].ID == "" {
		t.Errorf("finding needs an explanation and an ID: %+v", ds[0])
	}
}

func TestDivByZeroFiringRange(t *testing.T) {
	// iv spans [0, 15]: the divisor range contains zero -> warning.
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		b.SDiv(llvm.CI(llvm.I64(), 100), iv)
	})
	ds := runCheck(modOf(f), "div-by-zero")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "may be zero") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestDivByZeroNonFiring(t *testing.T) {
	// iv+1 spans [1, 16]: provably nonzero. A fully unknown divisor must
	// also stay silent.
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		b.SDiv(llvm.CI(llvm.I64(), 100), b.Add(iv, llvm.CI(llvm.I64(), 1)))
	})
	g := llvm.NewFunction("unknown", llvm.Void(), &llvm.Param{Name: "n", Ty: llvm.I64()})
	entry := g.AddBlock("entry")
	b := llvm.NewBuilder(g)
	b.SetBlock(entry)
	b.SDiv(llvm.CI(llvm.I64(), 100), g.Params[0])
	b.Ret(nil)
	if ds := runCheck(modOf(f, g), "div-by-zero"); len(ds) != 0 {
		t.Errorf("nonzero and unknown divisors should be clean: %v", ds)
	}
}

func TestShiftWidthFiringConst(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		x := b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 2))
		b.Binary(llvm.OpShl, x, llvm.CI(llvm.I64(), 70))
	})
	ds := runCheck(modOf(f), "shift-width")
	if len(ds) != 1 || ds[0].Severity != diag.SevError {
		t.Fatalf("want 1 error, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "always outside") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestShiftWidthFiringRange(t *testing.T) {
	// iv spans [0, 99]: the shift amount can cross the 64-bit width.
	f := loopFunc(t, 100, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		b.Binary(llvm.OpShl, llvm.CI(llvm.I64(), 1), iv)
	})
	ds := runCheck(modOf(f), "shift-width")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
}

func TestShiftWidthNonFiring(t *testing.T) {
	// iv spans [0, 15]: always a valid 64-bit shift amount.
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		b.Binary(llvm.OpShl, llvm.CI(llvm.I64(), 1), iv)
	})
	if ds := runCheck(modOf(f), "shift-width"); len(ds) != 0 {
		t.Errorf("in-width shifts should be clean: %v", ds)
	}
}

// deadBranchFunc builds a function whose then-arm is dead: the branch
// condition folds to false.
func deadBranchFunc(t *testing.T) *llvm.Function {
	t.Helper()
	f := llvm.NewFunction("deadarm", llvm.Void())
	entry := f.AddBlock("entry")
	then := f.AddBlock("then")
	els := f.AddBlock("else")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	x := b.Add(llvm.CI(llvm.I64(), 2), llvm.CI(llvm.I64(), 2))
	cmp := b.ICmp("sgt", x, llvm.CI(llvm.I64(), 10))
	b.CondBr(cmp, then, els)
	b.SetBlock(then)
	b.Br(els)
	b.SetBlock(els)
	b.Ret(nil)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f
}

func TestUnreachableCodeFiring(t *testing.T) {
	ds := runCheck(modOf(deadBranchFunc(t)), "unreachable-code")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if ds[0].Block != "then" {
		t.Errorf("finding should locate the dead block: %+v", ds[0])
	}
	if !strings.Contains(ds[0].Explanation, "constant 0") {
		t.Errorf("explanation should quote the constant condition: %q", ds[0].Explanation)
	}
}

func TestUnreachableCodeNonFiring(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	if ds := runCheck(modOf(f), "unreachable-code"); len(ds) != 0 {
		t.Errorf("loop blocks are all reachable: %v", ds)
	}
}

// TestGEPBoundsGuardedAccess: a trip-64 loop over a 16-element array whose
// access sits under an explicit `iv < 16` guard. The affine reasoning this
// check used to rely on saw [0, 63] and warned; branch refinement proves the
// guarded range is [0, 15], so the interval-backed check must stay silent.
func TestGEPBoundsGuardedAccess(t *testing.T) {
	arr := &llvm.Param{Name: "arr", Ty: llvm.Ptr(arrTy())}
	f := llvm.NewFunction("guarded", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	h := f.AddBlock("h")
	bodyTop := f.AddBlock("bodyTop")
	guarded := f.AddBlock("guarded")
	latch := f.AddBlock("latch")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(h)
	b.SetBlock(h)
	iv := b.Phi(llvm.I64())
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 64))
	b.CondBr(cond, bodyTop, exit)
	b.SetBlock(bodyTop)
	guard := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 16))
	b.CondBr(guard, guarded, latch)
	b.SetBlock(guarded)
	p := b.GEP(arrTy(), f.Params[0], llvm.CI(llvm.I64(), 0), iv)
	b.Store(llvm.CF(llvm.FloatT(), 1), p)
	b.Br(latch)
	b.SetBlock(latch)
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	b.Br(h)
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	iv.AddIncoming(next, latch)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	if ds := runCheck(modOf(f), "gep-bounds"); len(ds) != 0 {
		t.Errorf("guarded access is provably in bounds: %v", ds)
	}
}

// TestGEPBoundsNonAffineMasked: `and iv, 15` is outside the affine fragment
// but the interval analysis bounds it to [0, 15] — in range for size 16, and
// out of range for a smaller array.
func TestGEPBoundsNonAffineMasked(t *testing.T) {
	f := loopFunc(t, 64, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		masked := b.Binary(llvm.OpAnd, iv, llvm.CI(llvm.I64(), 15))
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), masked)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	if ds := runCheck(modOf(f), "gep-bounds"); len(ds) != 0 {
		t.Errorf("masked index is provably in bounds: %v", ds)
	}
	// Same mask over an 8-element array: [0, 15] leaves the dimension.
	g := llvm.NewFunction("small", llvm.Void(),
		&llvm.Param{Name: "arr", Ty: llvm.Ptr(llvm.ArrayOf(8, llvm.FloatT()))})
	entry := g.AddBlock("entry")
	h := g.AddBlock("h")
	bb := g.AddBlock("body")
	exit := g.AddBlock("exit")
	b := llvm.NewBuilder(g)
	b.SetBlock(entry)
	b.Br(h)
	b.SetBlock(h)
	iv := b.Phi(llvm.I64())
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 64))
	b.CondBr(cond, bb, exit)
	b.SetBlock(bb)
	masked := b.Binary(llvm.OpAnd, iv, llvm.CI(llvm.I64(), 15))
	p := b.GEP(llvm.ArrayOf(8, llvm.FloatT()), g.Params[0], llvm.CI(llvm.I64(), 0), masked)
	b.Store(llvm.CF(llvm.FloatT(), 1), p)
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	b.Br(h)
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	iv.AddIncoming(next, bb)
	ds := runCheck(modOf(g), "gep-bounds")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning for the masked overflow, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "outside dimension") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

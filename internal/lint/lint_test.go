package lint

import (
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/llvm"
	lpasses "repro/internal/llvm/passes"
	"repro/internal/mlir"
)

func modOf(fs ...*llvm.Function) *llvm.Module {
	m := llvm.NewModule("lint-test")
	for _, f := range fs {
		m.AddFunc(f)
	}
	return m
}

// runCheck runs exactly one check over m.
func runCheck(m *llvm.Module, check string) diag.Diagnostics {
	return Module(m, Options{Enabled: map[string]bool{check: true}})
}

// straightLine builds: entry { body(b); ret } with no loops.
func straightLine(t *testing.T, body func(b *llvm.Builder)) *llvm.Function {
	t.Helper()
	f := llvm.NewFunction("straight", llvm.Void())
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	body(b)
	b.Ret(nil)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f
}

// loopFunc builds a canonical counted loop (entry -> h -> body -> h ; h ->
// exit) over a pointer-to-[16 x float] parameter, with md attached to the
// latch and the body emitted by the callback.
func loopFunc(t *testing.T, trip int64, md *llvm.LoopMD, body func(b *llvm.Builder, iv llvm.Value, arr llvm.Value)) *llvm.Function {
	t.Helper()
	arr := &llvm.Param{Name: "arr", Ty: llvm.Ptr(llvm.ArrayOf(16, llvm.FloatT()))}
	f := llvm.NewFunction("loop", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	h := f.AddBlock("h")
	bb := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(h)
	b.SetBlock(h)
	iv := b.Phi(llvm.I64())
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I64(), trip))
	b.CondBr(cond, bb, exit)
	b.SetBlock(bb)
	body(b, iv, arr)
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	latch := b.Br(h)
	latch.Loop = md
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	iv.AddIncoming(next, bb)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f
}

// arrTy is the source element type loopFunc's parameter points to.
func arrTy() *llvm.Type { return llvm.ArrayOf(16, llvm.FloatT()) }

func TestSSADominanceFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		x := b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 2))
		b.Add(x, llvm.CI(llvm.I64(), 3))
	})
	// Hoist the use above its def: Verify accepts this, the lint must not.
	e := f.Entry()
	e.Instrs[0], e.Instrs[1] = e.Instrs[1], e.Instrs[0]
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify should accept the reordered block (lint is the stricter layer): %v", err)
	}
	ds := runCheck(modOf(f), "ssa-dominance")
	if len(ds) != 1 || ds[0].Severity != diag.SevError {
		t.Fatalf("want 1 error, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "used before its definition") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestSSADominanceNonFiring(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(b.Load(llvm.FloatT(), p), p)
	})
	if ds := runCheck(modOf(f), "ssa-dominance"); len(ds) != 0 {
		t.Errorf("clean loop should have no dominance findings: %v", ds)
	}
}

func TestUninitLoadFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Load(llvm.FloatT(), a)
	})
	ds := runCheck(modOf(f), "uninit-load")
	if len(ds) != 1 || ds[0].Severity != diag.SevError {
		t.Fatalf("want 1 error, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "no path has initialized") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestUninitLoadNonFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Store(llvm.CF(llvm.FloatT(), 1), a)
		b.Load(llvm.FloatT(), a)
	})
	if ds := runCheck(modOf(f), "uninit-load"); len(ds) != 0 {
		t.Errorf("initialized load should be clean: %v", ds)
	}
}

func TestDeadStoreFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Store(llvm.CF(llvm.FloatT(), 1), a)
		b.Store(llvm.CF(llvm.FloatT(), 2), a)
		b.Load(llvm.FloatT(), a)
	})
	ds := runCheck(modOf(f), "dead-store")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
}

func TestDeadStoreNonFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Store(llvm.CF(llvm.FloatT(), 1), a)
		b.Load(llvm.FloatT(), a)
		b.Store(llvm.CF(llvm.FloatT(), 2), a)
	})
	if ds := runCheck(modOf(f), "dead-store"); len(ds) != 0 {
		t.Errorf("store-load-store should be clean: %v", ds)
	}
}

func TestDeadAllocaFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Store(llvm.CF(llvm.FloatT(), 1), a)
	})
	ds := runCheck(modOf(f), "dead-alloca")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
}

func TestDeadAllocaNonFiring(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.FloatT())
		b.Store(llvm.CF(llvm.FloatT(), 1), a)
		b.Load(llvm.FloatT(), a)
	})
	if ds := runCheck(modOf(f), "dead-alloca"); len(ds) != 0 {
		t.Errorf("read alloca should be clean: %v", ds)
	}
}

func TestGEPBoundsFiringConst(t *testing.T) {
	f := straightLine(t, func(b *llvm.Builder) {
		a := b.Alloca(llvm.ArrayOf(4, llvm.FloatT()))
		p := b.GEP(llvm.ArrayOf(4, llvm.FloatT()), a, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 9))
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	ds := runCheck(modOf(f), "gep-bounds")
	if len(ds) != 1 || ds[0].Severity != diag.SevError {
		t.Fatalf("want 1 error, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "outside dimension") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestGEPBoundsFiringInduction(t *testing.T) {
	// Trip 32 over a 16-element array: the induction range [0, 31] exceeds
	// the static bound, so the ranged analysis must warn.
	f := loopFunc(t, 32, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	ds := runCheck(modOf(f), "gep-bounds")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
}

func TestGEPBoundsNonFiring(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	if ds := runCheck(modOf(f), "gep-bounds"); len(ds) != 0 {
		t.Errorf("in-bounds accesses should be clean: %v", ds)
	}
}

// recurrenceBody loads and stores a loop-invariant address — a memory
// recurrence that bounds the pipeline II.
func recurrenceBody(b *llvm.Builder, iv, arr llvm.Value) {
	p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	v := b.Load(llvm.FloatT(), p)
	b.Store(b.FAdd(v, llvm.CF(llvm.FloatT(), 1)), p)
}

func TestLoopCarriedDepFiring(t *testing.T) {
	f := loopFunc(t, 16, nil, recurrenceBody)
	ds := runCheck(modOf(f), "loop-carried-dep")
	if len(ds) != 1 || ds[0].Severity != diag.SevInfo {
		t.Fatalf("want 1 info, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "RecMII") {
		t.Errorf("finding should quote the RecMII: %s", ds[0].Message)
	}
}

func TestLoopCarriedDepNonFiring(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(b.FAdd(b.Load(llvm.FloatT(), p), llvm.CF(llvm.FloatT(), 1)), p)
	})
	if ds := runCheck(modOf(f), "loop-carried-dep"); len(ds) != 0 {
		t.Errorf("induction-indexed access carries nothing: %v", ds)
	}
}

func TestDirectivesFiringIIBelowRecMII(t *testing.T) {
	f := loopFunc(t, 16, &llvm.LoopMD{Pipeline: true, II: 1}, recurrenceBody)
	ds := runCheck(modOf(f), "hls-directives")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "below the dependence-implied RecMII") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestDirectivesFiringUnrollRemainder(t *testing.T) {
	f := loopFunc(t, 16, &llvm.LoopMD{Unroll: 3}, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	ds := runCheck(modOf(f), "hls-directives")
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "does not divide the trip count") {
		t.Fatalf("want the remainder warning, got %v", ds)
	}
}

func TestDirectivesFiringPartition(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(llvm.CF(llvm.FloatT(), 1), p)
	})
	f.SetAttr("hls.array_partition.arg0", "cyclic,32,0")
	ds := runCheck(modOf(f), "hls-directives")
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "exceeds dimension") {
		t.Fatalf("want the oversized-factor warning, got %v", ds)
	}
}

func TestDirectivesNonFiring(t *testing.T) {
	f := loopFunc(t, 16, &llvm.LoopMD{Pipeline: true, II: 1}, func(b *llvm.Builder, iv, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(b.FAdd(b.Load(llvm.FloatT(), p), llvm.CF(llvm.FloatT(), 1)), p)
	})
	f.SetAttr("hls.array_partition.arg0", "cyclic,4,0")
	if ds := runCheck(modOf(f), "hls-directives"); len(ds) != 0 {
		t.Errorf("feasible directives should be clean: %v", ds)
	}
}

// TestVerifyEachNamesOffendingPass: a pass that breaks SSA dominance slips
// through Verify but must be caught — and named — by the pass manager's
// invariant hook.
func TestVerifyEachNamesOffendingPass(t *testing.T) {
	build := func() *llvm.Module {
		return modOf(straightLine(t, func(b *llvm.Builder) {
			x := b.Add(llvm.CI(llvm.I64(), 1), llvm.CI(llvm.I64(), 2))
			b.Add(x, llvm.CI(llvm.I64(), 3))
		}))
	}
	breaker := lpasses.Pass{Name: "break-ssa", Run: func(f *llvm.Function) {
		e := f.Entry()
		e.Instrs[0], e.Instrs[1] = e.Instrs[1], e.Instrs[0]
	}}

	pm := lpasses.NewPassManager().Add(lpasses.PassCSE, breaker)
	pm.VerifyEach = true
	pm.Invariants = Invariants
	err := pm.Run(build())
	if err == nil {
		t.Fatal("the invariant hook must reject the broken module")
	}
	if !strings.Contains(err.Error(), "after LLVM pass break-ssa") {
		t.Errorf("error must name the offending pass: %v", err)
	}

	// Without VerifyEach the same pipeline is (historically) not caught
	// between passes; final Verify does not model dominance either.
	pm = lpasses.NewPassManager().Add(lpasses.PassCSE, breaker)
	if err := pm.Run(build()); err != nil {
		t.Errorf("legacy mode should not reject (that is the gap verify-each closes): %v", err)
	}
}

// buildMLIRLoop returns a module with one affine.for over a memref and the
// loop op itself, for directive-attr mutation.
func buildMLIRLoop(t *testing.T) (*mlir.Module, *mlir.Op) {
	t.Helper()
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("k", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("k")))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineStore(b.AffineLoad(args[0], i), args[0], i)
	})
	b.Return()
	var forOp *mlir.Op
	mlir.Walk(m.FindFunc("k"), func(op *mlir.Op) bool {
		if op.Name == mlir.OpAffineFor {
			forOp = op
		}
		return true
	})
	if forOp == nil {
		t.Fatal("fixture has no affine.for")
	}
	return m, forOp
}

func TestMLIRDirectivesFiring(t *testing.T) {
	m, forOp := buildMLIRLoop(t)
	forOp.SetAttr(mlir.AttrII, mlir.I(2)) // II without pipeline: warning
	ds := MLIRDirectives(m)
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if err := MLIRInvariants(m); err != nil {
		t.Errorf("warnings must not fail the invariant gate: %v", err)
	}

	forOp.SetAttr(mlir.AttrPipeline, mlir.UnitAttr{})
	forOp.SetAttr(mlir.AttrII, mlir.I(0)) // malformed payload: error
	if err := MLIRInvariants(m); err == nil {
		t.Error("hls.ii=0 must fail the MLIR invariant gate")
	}
}

func TestMLIRDirectivesNonFiring(t *testing.T) {
	m, forOp := buildMLIRLoop(t)
	forOp.SetAttr(mlir.AttrPipeline, mlir.UnitAttr{})
	forOp.SetAttr(mlir.AttrII, mlir.I(1))
	if ds := MLIRDirectives(m); len(ds) != 0 {
		t.Errorf("well-formed directives should be clean: %v", ds)
	}
	if err := MLIRInvariants(m); err != nil {
		t.Errorf("clean module must pass the gate: %v", err)
	}
}

package lint

import (
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/llvm"
)

func TestOverflowPossibleFiring(t *testing.T) {
	i8 := llvm.IntT(8)
	f := straightLine(t, func(b *llvm.Builder) {
		b.Add(llvm.CI(i8, 100), llvm.CI(i8, 100)) // 200 leaves i8
	})
	ds := runCheck(modOf(f), "overflow-possible")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "can wrap") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
	if ds[0].Explanation == "" {
		t.Errorf("finding needs an explanation: %+v", ds[0])
	}
}

func TestOverflowPossibleNonFiring(t *testing.T) {
	i8 := llvm.IntT(8)
	// Proven in-range arithmetic stays silent.
	f := straightLine(t, func(b *llvm.Builder) {
		b.Add(llvm.CI(i8, 10), llvm.CI(i8, 20))
	})
	// So does arithmetic on an operand the analysis knows nothing about.
	g := llvm.NewFunction("unknown", llvm.Void(), &llvm.Param{Name: "x", Ty: i8})
	entry := g.AddBlock("entry")
	b := llvm.NewBuilder(g)
	b.SetBlock(entry)
	b.Add(g.Params[0], llvm.CI(i8, 1))
	b.Ret(nil)
	if ds := runCheck(modOf(f, g), "overflow-possible"); len(ds) != 0 {
		t.Errorf("in-range and unbounded adds should be clean: %v", ds)
	}
}

func TestTruncatingStoreFiring(t *testing.T) {
	i8, i64 := llvm.IntT(8), llvm.I64()
	f := straightLine(t, func(b *llvm.Builder) {
		slot := b.Alloca(i8)
		wide := b.Add(llvm.CI(i64, 150), llvm.CI(i64, 50)) // 200 cannot fit i8
		b.Store(b.Cast(llvm.OpTrunc, wide, i8), slot)
	})
	ds := runCheck(modOf(f), "truncating-store")
	if len(ds) != 1 || ds[0].Severity != diag.SevWarning {
		t.Fatalf("want 1 warning, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "truncates") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestTruncatingStoreNonFiring(t *testing.T) {
	i8, i64 := llvm.IntT(8), llvm.I64()
	// A value proven to fit is fine.
	f := straightLine(t, func(b *llvm.Builder) {
		slot := b.Alloca(i8)
		small := b.Add(llvm.CI(i64, 30), llvm.CI(i64, 20))
		b.Store(b.Cast(llvm.OpTrunc, small, i8), slot)
	})
	// An unbounded source proves nothing: house style stays silent.
	g := llvm.NewFunction("unknown", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := g.AddBlock("entry")
	b := llvm.NewBuilder(g)
	b.SetBlock(entry)
	slot := b.Alloca(i8)
	b.Store(b.Cast(llvm.OpTrunc, g.Params[0], i8), slot)
	b.Ret(nil)
	if ds := runCheck(modOf(f, g), "truncating-store"); len(ds) != 0 {
		t.Errorf("fitting and unbounded trunc stores should be clean: %v", ds)
	}
}

func TestRedundantMaskFiring(t *testing.T) {
	i64 := llvm.I64()
	f := llvm.NewFunction("mask", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	low := b.Binary(llvm.OpAnd, f.Params[0], llvm.CI(i64, 15))
	b.Binary(llvm.OpAnd, low, llvm.CI(i64, 255)) // already within 15
	b.Ret(nil)
	ds := runCheck(modOf(f), "redundant-mask")
	if len(ds) != 1 || ds[0].Severity != diag.SevInfo {
		t.Fatalf("want 1 info on the second and, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "no-op") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

func TestRedundantMaskNonFiring(t *testing.T) {
	i64 := llvm.I64()
	f := llvm.NewFunction("mask", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Binary(llvm.OpAnd, f.Params[0], llvm.CI(i64, 15)) // x unknown: mask does work
	b.Ret(nil)
	if ds := runCheck(modOf(f), "redundant-mask"); len(ds) != 0 {
		t.Errorf("a real mask should be clean: %v", ds)
	}
}

func TestRedundantExtFiring(t *testing.T) {
	i8, i64 := llvm.IntT(8), llvm.I64()
	f := llvm.NewFunction("ext", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	slot := b.Alloca(i64)
	narrow := b.Cast(llvm.OpTrunc, f.Params[0], i8)
	wide := b.Cast(llvm.OpSExt, narrow, i64)
	masked := b.Binary(llvm.OpAnd, wide, llvm.CI(i64, 255)) // observes 8 bits only
	b.Store(masked, slot)
	b.Ret(nil)
	ds := runCheck(modOf(f), "redundant-ext")
	if len(ds) != 1 || ds[0].Severity != diag.SevInfo {
		t.Fatalf("want 1 info, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "redundant") {
		t.Errorf("unexpected message: %s", ds[0].Message)
	}
}

// TestWidthRuleMetadataComplete pins the SARIF contract for the bitwidth
// rules: every registered check — the four width checks included — ships
// short/full descriptions and remediation help, and a SARIF render of a
// firing width finding embeds its rule entry.
func TestWidthRuleMetadataComplete(t *testing.T) {
	meta := RuleMetadata()
	for _, name := range CheckNames() {
		m, ok := meta[name]
		if !ok {
			t.Errorf("%s: no SARIF rule metadata", name)
			continue
		}
		if m.Short == "" || m.Full == "" || m.Help == "" {
			t.Errorf("%s: incomplete SARIF rule metadata: %+v", name, m)
		}
	}

	i8 := llvm.IntT(8)
	f := straightLine(t, func(b *llvm.Builder) {
		b.Add(llvm.CI(i8, 100), llvm.CI(i8, 100))
	})
	ds := runCheck(modOf(f), "overflow-possible")
	if len(ds) != 1 {
		t.Fatalf("want 1 finding, got %v", ds)
	}
	sarif, err := diag.Diagnostics(ds).SARIFWithMeta("hls-lint", meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"overflow-possible"`, "can wrap"} {
		if !strings.Contains(string(sarif), want) {
			t.Errorf("SARIF output missing %q:\n%s", want, sarif)
		}
	}
}

func TestRedundantExtNonFiring(t *testing.T) {
	i8, i64 := llvm.IntT(8), llvm.I64()
	f := llvm.NewFunction("ext", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	slot := b.Alloca(i64)
	narrow := b.Cast(llvm.OpTrunc, f.Params[0], i8)
	wide := b.Cast(llvm.OpSExt, narrow, i64)
	b.Store(wide, slot) // the store observes every extended bit
	b.Ret(nil)
	if ds := runCheck(modOf(f), "redundant-ext"); len(ds) != 0 {
		t.Errorf("a fully observed extension should be clean: %v", ds)
	}
}

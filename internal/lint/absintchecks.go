package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/llvm"
)

// checkDivByZero flags integer divisions and remainders whose divisor range
// includes zero: a divisor that is always zero is an error (undefined on
// every execution), a bounded range that merely contains zero is a warning.
// Unbounded divisors stay silent — firing on "unknown" would flag every
// data-dependent division.
func checkDivByZero(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "div-by-zero"
	iv := ctx.Intervals()
	for _, b := range ctx.F.Blocks {
		if iv.Unreachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != llvm.OpSDiv && in.Op != llvm.OpSRem {
				continue
			}
			r := iv.At(b, in.Args[1])
			if c, ok := r.ConstVal(); ok && c == 0 {
				d := ctx.diag(diag.SevError, check, b, in,
					fmt.Sprintf("divisor %s is always zero", in.Args[1].Ident()),
					"division by zero is undefined; fix the divisor computation")
				d.Explanation = fmt.Sprintf("value range of %s: %s", in.Args[1].Ident(), r)
				out = append(out, d)
				continue
			}
			if r.Bounded() && r.Contains(0) {
				d := ctx.diag(diag.SevWarning, check, b, in,
					fmt.Sprintf("divisor %s ranges over %s and may be zero", in.Args[1].Ident(), r),
					"guard the division or exclude zero from the divisor's range")
				d.Explanation = fmt.Sprintf("value range of %s: %s", in.Args[1].Ident(), r)
				out = append(out, d)
			}
		}
	}
	return out
}

// checkShiftWidth flags shift amounts that can reach or exceed the shifted
// operand's bit width — undefined in LLVM and silently truncated or zeroed
// by hardware shifters. Always-out-of-range is an error; a bounded range
// that can cross the width is a warning. Unbounded amounts stay silent.
func checkShiftWidth(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "shift-width"
	iv := ctx.Intervals()
	for _, b := range ctx.F.Blocks {
		if iv.Unreachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != llvm.OpShl && in.Op != llvm.OpLShr && in.Op != llvm.OpAShr {
				continue
			}
			width := int64(64)
			if in.Ty != nil && in.Ty.IsInt() && in.Ty.Bits > 0 {
				width = int64(in.Ty.Bits)
			}
			r := iv.At(b, in.Args[1])
			if r.Empty || !r.Bounded() {
				continue
			}
			if r.Hi < 0 || r.Lo >= width {
				d := ctx.diag(diag.SevError, check, b, in,
					fmt.Sprintf("shift amount %s is always outside the %d-bit operand width", in.Args[1].Ident(), width),
					"the result is undefined on every execution")
				d.Explanation = fmt.Sprintf("value range of %s: %s; valid shift amounts are [0, %d]",
					in.Args[1].Ident(), r, width-1)
				out = append(out, d)
				continue
			}
			if r.Lo < 0 || r.Hi >= width {
				d := ctx.diag(diag.SevWarning, check, b, in,
					fmt.Sprintf("shift amount %s ranges over %s and can leave the %d-bit operand width",
						in.Args[1].Ident(), r, width),
					"clamp or mask the shift amount below the operand width")
				d.Explanation = fmt.Sprintf("value range of %s: %s; valid shift amounts are [0, %d]",
					in.Args[1].Ident(), r, width-1)
				out = append(out, d)
			}
		}
	}
	return out
}

// checkUnreachableCode flags blocks that are reachable in the CFG but that
// the conditional constant propagation proves no execution enters: every
// path to them requires a branch to go against its constant condition. The
// code is dead weight — synthesis still builds FSM states for it.
func checkUnreachableCode(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "unreachable-code"
	sccp := ctx.SCCP()
	for _, b := range ctx.F.Blocks {
		if !sccp.Unreachable(b) {
			continue
		}
		d := ctx.diag(diag.SevWarning, check, b, nil,
			fmt.Sprintf("block %%%s can never execute: every branch to it has a constant condition selecting the other arm", b.Name),
			"delete the dead block or fix the branch condition")
		for _, p := range ctx.CFG.Preds[b] {
			if c, ok := sccp.BranchConst(p); ok {
				d.Explanation = fmt.Sprintf("the branch condition in predecessor %%%s is the constant %d", p.Name, c)
				break
			}
		}
		out = append(out, d)
	}
	return out
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

// MLIRDirectives lints the HLS directive attributes at the MLIR level,
// before lowering discards the structured loops: malformed attribute
// payloads are errors (the invariant subset — a directive pass must never
// emit them), while requests the backend will ignore are warnings. Running
// the same directive vocabulary at both IR levels is what makes the
// subsystem cross-layer: a defect is reported at whichever layer it first
// becomes visible.
func MLIRDirectives(m *mlir.Module) diag.Diagnostics {
	var out diag.Diagnostics
	for _, f := range m.Funcs() {
		fname := mlir.FuncName(f)
		mk := func(sev diag.Severity, op *mlir.Op, msg, suggestion string) {
			out = append(out, diag.Diagnostic{
				Severity: sev, Check: "hls-directives", Func: fname,
				Instr: op.Name, Message: msg, Suggestion: suggestion,
				BlockPos: -1, InstrPos: -1,
			})
		}
		mlir.Walk(f, func(op *mlir.Op) bool {
			if op.Name == mlir.OpAffineFor {
				if ii, ok := op.IntAttr(mlir.AttrII); ok {
					if ii < 1 {
						mk(diag.SevError, op, fmt.Sprintf("hls.ii=%d is not a valid initiation interval", ii),
							"the II must be at least 1")
					}
					if !op.HasAttr(mlir.AttrPipeline) {
						mk(diag.SevWarning, op, "hls.ii without hls.pipeline has no effect", "")
					}
				}
				if u, ok := op.IntAttr(mlir.AttrUnroll); ok && u != -1 && u < 2 {
					mk(diag.SevError, op, fmt.Sprintf("hls.unroll=%d is not a valid unroll factor", u),
						"use a factor >= 2, or -1 for full unrolling")
				}
				if op.HasAttr(mlir.AttrPipeline) && hasNestedFor(op) {
					mk(diag.SevWarning, op, "hls.pipeline on a non-innermost loop is ignored", "")
				}
			}
			if op.Name == mlir.OpFunc {
				for key, a := range op.Attrs {
					if len(key) > len(mlir.AttrPartition) && key[:len(mlir.AttrPartition)+1] == mlir.AttrPartition+"." {
						spec, ok := passes.ParsePartitionAttr(a)
						if !ok {
							mk(diag.SevError, op, fmt.Sprintf("malformed array-partition attribute %s", key),
								"the payload must be [kind, factor, dim]")
							continue
						}
						switch spec.Kind {
						case "cyclic", "block", "complete":
						default:
							mk(diag.SevError, op, fmt.Sprintf("array-partition attribute %s has unknown kind %q", key, spec.Kind),
								"use cyclic, block, or complete")
						}
					}
				}
			}
			return true
		})
	}
	out.Sort()
	return out
}

// MLIRInvariants converts MLIRDirectives' error-severity findings into a
// single error (nil when clean) — the hook the MLIR pass manager's
// verify-each mode calls after every pass.
func MLIRInvariants(m *mlir.Module) error {
	return MLIRDirectives(m).AsError()
}

// hasNestedFor reports whether another affine.for nests inside op.
func hasNestedFor(op *mlir.Op) bool {
	nested := false
	mlir.Walk(op, func(o *mlir.Op) bool {
		if o != op && o.Name == mlir.OpAffineFor {
			nested = true
			return false
		}
		return true
	})
	return nested
}

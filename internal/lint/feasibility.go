package lint

import (
	"repro/internal/hls"
	"repro/internal/llvm"
)

// MinPipelineFloor computes the feasibility floor the DSE pre-check prunes
// against: the smallest dependence-implied RecMII across the top function's
// innermost pipelined loops, on an already-prepared (adapted and cleaned)
// LLVM module. Any two requested pipeline IIs that are both <= the floor
// produce identical schedules — for every pipelined loop the achieved II is
// max(request, RecMII, ResMII), and request <= floor <= RecMII makes the
// request irrelevant — so a sweep needs only the smallest such request.
// ok=false when the module has no pipelined innermost loop to bound.
func MinPipelineFloor(m *llvm.Module, top string, tgt hls.Target) (floor int, ok bool) {
	f := m.FindFunc(top)
	if f == nil || f.IsDecl || len(f.Blocks) == 0 {
		return 0, false
	}
	ctx := newFuncContext(m, f, tgt)
	for _, l := range ctx.Loops.Loops {
		if !l.IsInnermost() || l.MD == nil || !l.MD.Pipeline {
			continue
		}
		rec := ctx.recMIIOf(l)
		if floor == 0 || rec < floor {
			floor = rec
		}
	}
	return floor, floor > 0
}

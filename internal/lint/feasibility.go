package lint

import (
	"repro/internal/hls"
	"repro/internal/llvm"
)

// LoopFloor describes the II bounds of one pipelined innermost loop on a
// prepared (adapted and cleaned) module: the alias-filtered recurrence floor
// plus the raw per-base memory access counts, from which a caller can price
// the resource floor ceil(accesses/ports) under ANY partition configuration.
// Access counts are partition-independent — the partition passes only attach
// attributes — so one preparation serves every directive group.
type LoopFloor struct {
	Header string
	RecMII int
	// ParamAccesses counts loads+stores per parameter index (the bases
	// partition directives can widen).
	ParamAccesses map[int]int
	// LocalAccesses is the largest per-base count over non-parameter bases
	// (allocas), which always run at the target's default port width.
	LocalAccesses int
}

// PipelineFloors computes a LoopFloor for every pipelined innermost loop of
// the top function. ok=false when there is nothing to bound.
func PipelineFloors(m *llvm.Module, top string, tgt hls.Target) ([]LoopFloor, bool) {
	f := m.FindFunc(top)
	if f == nil || f.IsDecl || len(f.Blocks) == 0 {
		return nil, false
	}
	ctx := newFuncContext(m, f, tgt)
	paramIdx := map[llvm.Value]int{}
	for i, p := range f.Params {
		paramIdx[p] = i
	}
	var out []LoopFloor
	for _, l := range ctx.Loops.Loops {
		if !l.IsInnermost() || l.MD == nil || !l.MD.Pipeline {
			continue
		}
		lf := LoopFloor{
			Header:        l.Header.Name,
			RecMII:        ctx.recMIIOf(l),
			ParamAccesses: map[int]int{},
		}
		for base, n := range tgt.MemAccessCounts(ctx.iterInstrs(l)) {
			if i, ok := paramIdx[base]; ok {
				lf.ParamAccesses[i] = n
			} else if n > lf.LocalAccesses {
				lf.LocalAccesses = n
			}
		}
		out = append(out, lf)
	}
	return out, len(out) > 0
}

// MinPipelineFloor computes the feasibility floor the DSE pre-check prunes
// against: the smallest dependence-implied RecMII across the top function's
// innermost pipelined loops, on an already-prepared (adapted and cleaned)
// LLVM module. Any two requested pipeline IIs that are both <= the floor
// produce identical schedules — for every pipelined loop the achieved II is
// max(request, RecMII, ResMII), and request <= floor <= RecMII makes the
// request irrelevant — so a sweep needs only the smallest such request.
// ok=false when the module has no pipelined innermost loop to bound.
func MinPipelineFloor(m *llvm.Module, top string, tgt hls.Target) (floor int, ok bool) {
	floors, ok := PipelineFloors(m, top, tgt)
	if !ok {
		return 0, false
	}
	for _, lf := range floors {
		if floor == 0 || lf.RecMII < floor {
			floor = lf.RecMII
		}
	}
	return floor, floor > 0
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// iterInstrs returns one iteration's instructions of l in reverse postorder,
// excluding blocks of nested loops.
func (ctx *FuncContext) iterInstrs(l *analysis.Loop) []*llvm.Instr {
	var out []*llvm.Instr
	for _, b := range ctx.CFG.Order {
		if !l.Contains(b) {
			continue
		}
		nested := false
		for _, c := range l.Children {
			if c.Contains(b) {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		out = append(out, b.Instrs...)
	}
	return out
}

// recMIIOf computes the scheduler's recurrence-constrained minimum II for
// one loop iteration, using the same dependence model synthesis applies,
// with the points-to analysis discarding load/store pairs at provably
// disjoint addresses before the structural comparison. Must-alias pairs are
// always may-alias, so this floor is never above the unfiltered one.
func (ctx *FuncContext) recMIIOf(l *analysis.Loop) int {
	instrs := ctx.iterInstrs(l)
	return ctx.Target.RecMII(instrs, func(v llvm.Value) bool {
		return hls.DependsOnLoopPhi(v, l.Header)
	}, ctx.PointsTo().MayAlias)
}

// checkLoopCarriedDep reports memory recurrences in innermost loops: a load
// that reads an address stored by the same iteration at a loop-invariant
// location carries a value across iterations and bounds any pipeline at
// RecMII. The finding is informational — the code is correct — but it
// explains why an aggressive II will not be met (the hls-directives check
// escalates that case to a warning).
func checkLoopCarriedDep(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "loop-carried-dep"
	for _, l := range ctx.Loops.Loops {
		if !l.IsInnermost() {
			continue
		}
		instrs := ctx.iterInstrs(l)
		seenBase := map[llvm.Value]bool{}
		for _, ld := range instrs {
			if ld.Op != llvm.OpLoad {
				continue
			}
			for _, st := range instrs {
				if st.Op != llvm.OpStore || !ctx.PointsTo().MayAlias(ld.Args[0], st.Args[1]) ||
					!hls.SameAddress(ld.Args[0], st.Args[1]) {
					continue
				}
				if hls.DependsOnLoopPhi(ld.Args[0], l.Header) {
					continue // address moves each iteration: no recurrence
				}
				base := hls.BaseOf(ld.Args[0])
				if seenBase[base] {
					continue
				}
				seenBase[base] = true
				rec := ctx.recMIIOf(l)
				out = append(out, ctx.diag(diag.SevInfo, check, nil, ld,
					fmt.Sprintf("loop %%%s carries a value through %s across iterations (RecMII=%d)",
						l.Header.Name, base.Ident(), rec),
					"pipelining this loop cannot achieve II below the recurrence latency"))
			}
		}
	}
	return out
}

package lint

import (
	"fmt"
	"strings"

	"repro/internal/deptest"
	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// iterInstrs returns one iteration's instructions of l in reverse postorder,
// excluding blocks of nested loops.
func (ctx *FuncContext) iterInstrs(l *analysis.Loop) []*llvm.Instr {
	var out []*llvm.Instr
	for _, b := range ctx.CFG.Order {
		if !l.Contains(b) {
			continue
		}
		nested := false
		for _, c := range l.Children {
			if c.Contains(b) {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		out = append(out, b.Instrs...)
	}
	return out
}

// loopMemInstrs returns every load/store inside l in reverse postorder,
// including nested-loop bodies: an outer loop can carry a dependence through
// accesses that live in its children.
func (ctx *FuncContext) loopMemInstrs(l *analysis.Loop) []*llvm.Instr {
	var out []*llvm.Instr
	for _, b := range ctx.CFG.Order {
		if !l.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == llvm.OpLoad || in.Op == llvm.OpStore {
				out = append(out, in)
			}
		}
	}
	return out
}

// recMIIOf computes the scheduler's recurrence-constrained minimum II for
// one loop iteration, using the same dependence model synthesis applies: the
// affine dependence engine refines distances wherever both accesses are
// affine, the points-to analysis discards pairs at provably disjoint
// addresses, and the structural comparison covers the rest. Exactness here
// matters — the DSE pre-check prunes against this floor, so it must equal
// the scheduler's.
func (ctx *FuncContext) recMIIOf(l *analysis.Loop) int {
	instrs := ctx.iterInstrs(l)
	return ctx.Target.RecMIIWith(ctx.DepEngine(), l, instrs, func(v llvm.Value) bool {
		return hls.DependsOnLoopPhi(v, l.Header)
	}, ctx.PointsTo().MayAlias)
}

// carriedFinding is the best (most precise) carried-dependence evidence for
// one base array at one loop level.
type carriedFinding struct {
	ld     *llvm.Instr
	st     *llvm.Instr
	cd     deptest.CarriedDep
	legacy bool // structural same-address fallback, no affine verdict
}

// better ranks findings for the same base: an exact distance beats a
// direction-only verdict beats the structural fallback; among exact
// distances the smallest (most constraining) wins.
func (f carriedFinding) better(than carriedFinding) bool {
	rank := func(x carriedFinding) int {
		switch {
		case x.cd.Exact:
			return 0
		case !x.legacy:
			return 1
		default:
			return 2
		}
	}
	ra, rb := rank(f), rank(than)
	if ra != rb {
		return ra < rb
	}
	if ra == 0 {
		return f.cd.Dist < than.cd.Dist
	}
	return false
}

// checkLoopCarriedDep reports memory recurrences at every loop level: a
// value stored in one iteration and read in a later iteration of the same
// loop bounds any pipeline of that loop at RecMII. The affine dependence
// engine decides the pair exactly where it can — reporting the dependence
// distance and exonerating provably independent pairs such as a[i] vs
// a[i+1] at the i level — and the structural same-address model covers
// non-affine accesses. The finding is informational — the code is correct —
// but it explains why an aggressive II will not be met (the hls-directives
// check escalates that case to a warning).
func checkLoopCarriedDep(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "loop-carried-dep"
	eng := ctx.DepEngine()
	for _, l := range ctx.Loops.Loops {
		instrs := ctx.loopMemInstrs(l)
		best := map[llvm.Value]carriedFinding{}
		for _, ld := range instrs {
			if ld.Op != llvm.OpLoad {
				continue
			}
			for _, st := range instrs {
				if st.Op != llvm.OpStore || !ctx.PointsTo().MayAlias(ld.Args[0], st.Args[1]) {
					continue
				}
				f := carriedFinding{ld: ld, st: st, cd: eng.Carried(l, st, ld)}
				switch f.cd.Res {
				case deptest.Independent:
					continue
				case deptest.Unknown:
					// Conservative summarization: the structural model, which
					// also covers accesses inside nested loops.
					if !hls.SameAddress(ld.Args[0], st.Args[1]) ||
						hls.DependsOnLoopPhi(ld.Args[0], l.Header) {
						continue
					}
					f.legacy = true
				}
				base := hls.BaseOf(ld.Args[0])
				if prev, ok := best[base]; !ok || f.better(prev) {
					best[base] = f
				}
			}
		}
		// Report in a deterministic order: by the load's position.
		var bases []llvm.Value
		for base := range best {
			bases = append(bases, base)
		}
		for i := 0; i < len(bases); i++ {
			for j := i + 1; j < len(bases); j++ {
				if ctx.less(best[bases[j]].ld, best[bases[i]].ld) {
					bases[i], bases[j] = bases[j], bases[i]
				}
			}
		}
		for _, base := range bases {
			f := best[base]
			out = append(out, ctx.carriedDiag(check, l, base, f))
		}
	}
	return out
}

// less orders instructions by block position, then instruction position.
func (ctx *FuncContext) less(a, b *llvm.Instr) bool {
	ba, bb := ctx.blockPos[a.Parent], ctx.blockPos[b.Parent]
	if ba != bb {
		return ba < bb
	}
	return ctx.instrPos[a] < ctx.instrPos[b]
}

// carriedDiag renders one carried-dependence finding. Innermost loops report
// the scheduler's RecMII floor; outer loops carry no pipeline II of their
// own, so their findings state the distance or direction only.
func (ctx *FuncContext) carriedDiag(check string, l *analysis.Loop, base llvm.Value, f carriedFinding) diag.Diagnostic {
	var detail string
	switch {
	case f.legacy:
		detail = ""
	case f.cd.Exact:
		detail = fmt.Sprintf("distance=%d, ", f.cd.Dist)
	default:
		detail = "direction <, "
	}
	var msg string
	if l.IsInnermost() {
		rec := ctx.recMIIOf(l)
		msg = fmt.Sprintf("loop %%%s carries a value through %s across iterations (%sRecMII=%d)",
			l.Header.Name, base.Ident(), detail, rec)
	} else {
		detail = strings.TrimSuffix(detail, ", ")
		if detail != "" {
			detail = " (" + detail + ")"
		}
		msg = fmt.Sprintf("loop %%%s carries a value through %s across iterations%s",
			l.Header.Name, base.Ident(), detail)
	}
	d := ctx.diag(diag.SevInfo, check, nil, f.ld, msg,
		"pipelining this loop cannot achieve II below the recurrence latency")
	d.Explanation = ctx.carriedExplanation(l, f)
	return d
}

// carriedExplanation spells out the evidence: the two access functions and
// the dependence tests that decided the pair.
func (ctx *FuncContext) carriedExplanation(l *analysis.Loop, f carriedFinding) string {
	eng := ctx.DepEngine()
	var sb strings.Builder
	if f.legacy {
		fmt.Fprintf(&sb, "the store and load use structurally identical, loop-invariant addresses (no affine verdict: %s)",
			strings.Join(f.cd.Tests, ", "))
		return sb.String()
	}
	stForm, okS := eng.AccessForm(f.st.Args[1])
	ldForm, okL := eng.AccessForm(f.ld.Args[0])
	if okS && okL {
		fmt.Fprintf(&sb, "store %s reaches load %s", stForm, ldForm)
	} else {
		sb.WriteString("store reaches load")
	}
	if f.cd.Exact {
		fmt.Fprintf(&sb, " %d iteration(s) of %%%s later", f.cd.Dist, l.Header.Name)
	} else {
		fmt.Fprintf(&sb, " in a later iteration of %%%s", l.Header.Name)
	}
	if len(f.cd.Tests) > 0 {
		fmt.Fprintf(&sb, "; tests: %s", strings.Join(f.cd.Tests, ", "))
	}
	return sb.String()
}

package lint

import (
	"fmt"
	"io"

	"repro/internal/bitwidth"
	"repro/internal/hls"
	"repro/internal/llvm"
)

// This file renders the bitwidth engine's full view for `hls-lint -widths`:
// per function, every named integer value with its known bits, interval,
// fused width, and demanded-narrowed hardware width, plus the aggregate
// resource delta between pricing the datapath at declared versus inferred
// widths.

// WidthArea is one cost model's LUT/FF/DSP total over a function's operators.
type WidthArea struct {
	LUT int `json:"lut"`
	FF  int `json:"ff"`
	DSP int `json:"dsp"`
}

// FuncWidths is the width report of one function.
type FuncWidths struct {
	Func     string                 `json:"func"`
	Values   []bitwidth.ValueReport `json:"values"`
	Declared WidthArea              `json:"declared"`
	Inferred WidthArea              `json:"inferred"`
	// SavedLUT/SavedFF/SavedDSP are Declared minus Inferred.
	SavedLUT int `json:"saved_lut"`
	SavedFF  int `json:"saved_ff"`
	SavedDSP int `json:"saved_dsp"`
}

// WidthSummary runs the bitwidth analysis over every defined function of m
// and prices each function's operators under both cost models.
func WidthSummary(m *llvm.Module, tgt hls.Target) []FuncWidths {
	if tgt.ClockNs == 0 {
		tgt = hls.DefaultTarget()
	}
	declared := tgt
	declared.CostModel = hls.CostDeclared
	inferred := tgt
	inferred.CostModel = hls.CostInferred

	var out []FuncWidths
	for _, f := range m.Funcs {
		if f.IsDecl || len(f.Blocks) == 0 {
			continue
		}
		a := bitwidth.Analyze(f)
		fw := FuncWidths{Func: f.Name, Values: a.Report()}
		inf := inferred.ResolveWidths(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				dc, ic := declared.CostOf(in), inf.CostOf(in)
				fw.Declared.LUT += dc.LUT
				fw.Declared.FF += dc.FF
				fw.Declared.DSP += dc.DSP
				fw.Inferred.LUT += ic.LUT
				fw.Inferred.FF += ic.FF
				fw.Inferred.DSP += ic.DSP
			}
		}
		fw.SavedLUT = fw.Declared.LUT - fw.Inferred.LUT
		fw.SavedFF = fw.Declared.FF - fw.Inferred.FF
		fw.SavedDSP = fw.Declared.DSP - fw.Inferred.DSP
		out = append(out, fw)
	}
	return out
}

// WriteWidthsText renders the summary for terminals.
func WriteWidthsText(w io.Writer, fws []FuncWidths) {
	for _, fw := range fws {
		fmt.Fprintf(w, "@%s\n", fw.Func)
		for _, v := range fw.Values {
			fmt.Fprintf(w, "  %%%s@%%%s: i%d %s hw=%d known=%s range=%s demanded=%s\n",
				v.Name, v.Block, v.TypeBits, v.Width, v.HWBits, v.Known, v.Interval, v.Demanded)
		}
		fmt.Fprintf(w, "  area declared lut=%d ff=%d dsp=%d | inferred lut=%d ff=%d dsp=%d | saved lut=%d ff=%d dsp=%d\n",
			fw.Declared.LUT, fw.Declared.FF, fw.Declared.DSP,
			fw.Inferred.LUT, fw.Inferred.FF, fw.Inferred.DSP,
			fw.SavedLUT, fw.SavedFF, fw.SavedDSP)
	}
}

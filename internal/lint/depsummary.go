package lint

import (
	"fmt"
	"io"

	"repro/internal/deptest"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// This file renders the dependence engine's full view for `hls-lint -deps`:
// per top-level loop nest, every load/store pair the points-to analysis
// cannot separate, with the tests applied and the resulting distance or
// direction vectors.

// DepEdge is one dependence edge of the summary, in printable form.
type DepEdge struct {
	Src  string   `json:"src"`
	Dst  string   `json:"dst"`
	Kind string   `json:"kind"`
	Base string   `json:"base,omitempty"`
	Res  string   `json:"result"`
	Vecs []string `json:"vectors,omitempty"`
	// Tests lists the subscript classes and tests that decided the pair
	// (ziv, strong-siv, weak-siv, miv, gcd, banerjee) or why it stayed
	// unresolved (non-affine, distinct-bases, ...).
	Tests []string `json:"tests,omitempty"`
}

// DepNest is the dependence summary of one top-level loop nest.
type DepNest struct {
	// Root is the nest's outermost header; Loops lists the nest's headers
	// outermost-first, the level order of every vector.
	Root  string    `json:"root"`
	Loops []string  `json:"loops"`
	Edges []DepEdge `json:"edges"`
}

// FuncDeps is the dependence summary of one function.
type FuncDeps struct {
	Func  string    `json:"func"`
	Nests []DepNest `json:"nests"`
}

// DependenceSummary runs the dependence engine over every defined function
// of m and collects the per-nest edges.
func DependenceSummary(m *llvm.Module) []FuncDeps {
	var out []FuncDeps
	for _, f := range m.Funcs {
		if f.IsDecl || len(f.Blocks) == 0 {
			continue
		}
		cfg := analysis.NewCFG(f)
		li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
		eng := deptest.New(f, li, absintMayAlias(f))
		fd := FuncDeps{Func: f.Name}
		for _, l := range li.Loops {
			if l.Parent != nil {
				continue // one summary per top-level nest
			}
			nest := DepNest{Root: l.Header.Name}
			for _, nl := range li.Loops {
				if nl == l || nestedIn(nl, l) {
					nest.Loops = append(nest.Loops, nl.Header.Name)
				}
			}
			for _, ed := range eng.Edges(l) {
				de := DepEdge{
					Src:   instrRef(ed.Src),
					Dst:   instrRef(ed.Dst),
					Kind:  ed.Kind,
					Res:   ed.Res.String(),
					Tests: ed.Tests,
				}
				if ed.Base != nil {
					de.Base = ed.Base.Ident()
				}
				for _, v := range ed.Vectors {
					de.Vecs = append(de.Vecs, v.String())
				}
				nest.Edges = append(nest.Edges, de)
			}
			fd.Nests = append(fd.Nests, nest)
		}
		if len(fd.Nests) > 0 {
			out = append(out, fd)
		}
	}
	return out
}

func nestedIn(l, root *analysis.Loop) bool {
	for p := l.Parent; p != nil; p = p.Parent {
		if p == root {
			return true
		}
	}
	return false
}

func instrRef(in *llvm.Instr) string {
	label := instrLabel(in)
	if in.Parent != nil {
		return fmt.Sprintf("%%%s@%%%s", label, in.Parent.Name)
	}
	return "%" + label
}

// absintMayAlias builds the points-to oracle the engine consults, matching
// the construction lint and synthesis use.
func absintMayAlias(f *llvm.Function) func(a, b llvm.Value) bool {
	ctx := &FuncContext{F: f}
	return func(a, b llvm.Value) bool { return ctx.PointsTo().MayAlias(a, b) }
}

// WriteDependenceText renders the summary for terminals.
func WriteDependenceText(w io.Writer, fds []FuncDeps) {
	for _, fd := range fds {
		fmt.Fprintf(w, "@%s\n", fd.Func)
		for _, nest := range fd.Nests {
			fmt.Fprintf(w, "  nest %%%s (levels:", nest.Root)
			for _, l := range nest.Loops {
				fmt.Fprintf(w, " %%%s", l)
			}
			fmt.Fprintln(w, ")")
			if len(nest.Edges) == 0 {
				fmt.Fprintln(w, "    no may-alias access pairs")
				continue
			}
			for _, ed := range nest.Edges {
				fmt.Fprintf(w, "    %-6s %s -> %s: %s", ed.Kind, ed.Src, ed.Dst, ed.Res)
				if ed.Base != "" {
					fmt.Fprintf(w, " base=%s", ed.Base)
				}
				for _, v := range ed.Vecs {
					fmt.Fprintf(w, " %s", v)
				}
				if len(ed.Tests) > 0 {
					fmt.Fprint(w, " [")
					for i, t := range ed.Tests {
						if i > 0 {
							fmt.Fprint(w, ", ")
						}
						fmt.Fprint(w, t)
					}
					fmt.Fprint(w, "]")
				}
				fmt.Fprintln(w)
			}
		}
	}
}

package lint

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
)

// allocaInfo summarizes one alloca's pointer flow, as seen by the points-to
// analysis.
type allocaInfo struct {
	root *llvm.Instr
	// escaped holds the points-to escape reason ("" when the address never
	// left the function's view). Unlike the older syntactic closure, pointers
	// merged through phi/select stay tracked — only calls, stores-as-value,
	// integer casts, returns, and aggregate inserts escape.
	escaped   bool
	escReason string
	loads     []*llvm.Instr
	stores    []*llvm.Instr
}

// collectAllocas finds every alloca with its escape verdict and the loads and
// stores that may touch it, all derived from the points-to relation.
func collectAllocas(ctx *FuncContext) []*allocaInfo {
	pts := ctx.PointsTo()
	var infos []*allocaInfo
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca {
				ai := &allocaInfo{root: in}
				ai.escReason, ai.escaped = pts.Escaped(in)
				infos = append(infos, ai)
			}
		}
	}
	if len(infos) == 0 {
		return nil
	}
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			for _, ai := range infos {
				switch in.Op {
				case llvm.OpLoad:
					if pts.Touches(in.Args[0], ai.root) {
						ai.loads = append(ai.loads, in)
					}
				case llvm.OpStore:
					if pts.Touches(in.Args[1], ai.root) {
						ai.stores = append(ai.stores, in)
					}
				}
			}
		}
	}
	return infos
}

// checkUninitLoad flags loads from non-escaping allocas that no execution
// path has stored to: forward may-init dataflow over the CFG (a block's
// entry state is the union over predecessors), then an in-order scan inside
// each block. Because the merge is a union and any store that MAY touch the
// allocation counts as initialization, a finding means *no* path from entry
// initializes the location — reading truly undefined memory, which
// interpretation and synthesis both turn into garbage. A load is only flagged
// when its address provably points into the allocation and nowhere else.
func checkUninitLoad(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "uninit-load"
	pts := ctx.PointsTo()
	for _, ai := range collectAllocas(ctx) {
		if ai.escaped || len(ai.loads) == 0 {
			continue
		}
		gen := map[*llvm.Block]bool{}
		for _, st := range ai.stores {
			gen[st.Parent] = true
		}
		// Forward may-init to fixpoint over reverse postorder.
		in := map[*llvm.Block]bool{}
		outB := map[*llvm.Block]bool{}
		for changed := true; changed; {
			changed = false
			for _, b := range ctx.CFG.Order {
				inb := false
				for _, p := range ctx.CFG.Preds[b] {
					if outB[p] {
						inb = true
						break
					}
				}
				ob := inb || gen[b]
				if in[b] != inb || outB[b] != ob {
					in[b], outB[b] = inb, ob
					changed = true
				}
			}
		}
		for _, b := range ctx.CFG.Order {
			cur := in[b]
			for _, i := range b.Instrs {
				switch i.Op {
				case llvm.OpStore:
					if pts.Touches(i.Args[1], ai.root) {
						cur = true
					}
				case llvm.OpLoad:
					if pts.DerivedFrom(i.Args[0], ai.root) && !cur {
						d := ctx.diag(diag.SevError, check, b, i,
							fmt.Sprintf("load from %s reads memory no path has initialized", ai.root.Ident()),
							"store an initial value on every path before this load")
						d.Explanation = fmt.Sprintf("address %s points to %s; no store into the allocation reaches this load on any path",
							i.Args[0].Ident(), pts.Describe(i.Args[0]))
						out = append(out, d)
					}
				}
			}
		}
	}
	return out
}

// mustAliasByElem reports whether the points-to analysis proves a and b
// address exactly the same element: each resolves to a single location with a
// known element index, and the locations are equal. This extends the
// scheduler's structural SameAddress to GEP chains that compute the same
// constant element through different expressions.
func mustAliasByElem(pts *absint.PointsToResult, a, b llvm.Value) bool {
	sa, oka := pts.Targets(a)
	sb, okb := pts.Targets(b)
	return oka && okb && len(sa) == 1 && len(sb) == 1 &&
		sa[0] == sb[0] && sa[0].Elem != absint.ElemUnknown
}

// checkDeadStore flags a store overwritten by a later same-address store in
// the same block with no intervening read: the first store's value can never
// be observed. The window ends at a load that may alias the stored address
// (points-to disproves loads of other arrays and other constant elements);
// calls end the window only when the stored-to allocation escapes — a callee
// cannot read an address it was never given. Same-address is the scheduler's
// structural SameAddress, extended by points-to element equality.
func checkDeadStore(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "dead-store"
	pts := ctx.PointsTo()
	mayEscape := func(addr llvm.Value) bool {
		targets, ok := pts.Targets(addr)
		if !ok {
			return true
		}
		for _, l := range targets {
			if _, esc := pts.Escaped(l.Root); esc {
				return true
			}
		}
		return false
	}
	for _, b := range ctx.F.Blocks {
		for i, st := range b.Instrs {
			if st.Op != llvm.OpStore {
				continue
			}
		window:
			for _, later := range b.Instrs[i+1:] {
				switch later.Op {
				case llvm.OpCall:
					if mayEscape(st.Args[1]) {
						break window
					}
				case llvm.OpLoad:
					if pts.MayAlias(later.Args[0], st.Args[1]) {
						break window
					}
				case llvm.OpStore:
					if hls.SameAddress(st.Args[1], later.Args[1]) ||
						mustAliasByElem(pts, st.Args[1], later.Args[1]) {
						d := ctx.diag(diag.SevWarning, check, b, st,
							fmt.Sprintf("store to %s is overwritten before any read", st.Args[1].Ident()),
							"remove the dead store or reorder the computation")
						d.Explanation = fmt.Sprintf("address %s points to %s; the next store to the same element precedes every read",
							st.Args[1].Ident(), pts.Describe(st.Args[1]))
						out = append(out, d)
						break window
					}
				}
			}
		}
	}
	return out
}

// checkDeadAlloca flags non-escaping allocas that are never loaded: the
// allocation (and every store into it) is dead weight that synthesis would
// still spend memory ports and BRAM on.
func checkDeadAlloca(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "dead-alloca"
	for _, ai := range collectAllocas(ctx) {
		if ai.escaped || len(ai.loads) > 0 {
			continue
		}
		msg := fmt.Sprintf("local allocation %s is never read", ai.root.Ident())
		if len(ai.stores) > 0 {
			msg += fmt.Sprintf(" (%d store(s) into it are dead)", len(ai.stores))
		}
		out = append(out, ctx.diag(diag.SevWarning, check, ai.root.Parent, ai.root,
			msg, "delete the allocation and its stores"))
	}
	return out
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
)

// allocaInfo summarizes one alloca's pointer flow.
type allocaInfo struct {
	root *llvm.Instr
	// derived holds every SSA value known to point into the allocation
	// (the alloca itself, GEPs and casts off it).
	derived map[llvm.Value]bool
	escaped bool
	loads   []*llvm.Instr
	stores  []*llvm.Instr
}

// collectAllocas finds every alloca with its derived-pointer closure, escape
// verdict, and the loads/stores through it. A pointer escapes when it is
// passed to a call, stored as a value, cast to an integer, returned, or
// merged through phi/select/insertvalue — after that, reads and writes can
// happen through names this local analysis cannot see.
func collectAllocas(ctx *FuncContext) []*allocaInfo {
	var infos []*allocaInfo
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca {
				infos = append(infos, &allocaInfo{
					root:    in,
					derived: map[llvm.Value]bool{in: true},
				})
			}
		}
	}
	if len(infos) == 0 {
		return nil
	}
	// Close the derived sets (GEP/bitcast chains can appear in any block
	// order, so iterate to a fixpoint).
	for changed := true; changed; {
		changed = false
		for _, b := range ctx.F.Blocks {
			for _, in := range b.Instrs {
				if in.Op != llvm.OpGEP && in.Op != llvm.OpBitcast {
					continue
				}
				for _, ai := range infos {
					if ai.derived[in.Args[0]] && !ai.derived[in] {
						ai.derived[in] = true
						changed = true
					}
				}
			}
		}
	}
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			for _, ai := range infos {
				switch in.Op {
				case llvm.OpLoad:
					if ai.derived[in.Args[0]] {
						ai.loads = append(ai.loads, in)
					}
				case llvm.OpStore:
					if ai.derived[in.Args[1]] {
						ai.stores = append(ai.stores, in)
					}
					if ai.derived[in.Args[0]] {
						ai.escaped = true // address stored as a value
					}
				case llvm.OpCall, llvm.OpPtrToInt, llvm.OpPhi, llvm.OpSelect,
					llvm.OpRet, llvm.OpInsertValue:
					for _, a := range in.Args {
						if ai.derived[a] {
							ai.escaped = true
						}
					}
				}
			}
		}
	}
	return infos
}

// checkUninitLoad flags loads from non-escaping allocas that no execution
// path has stored to: forward may-init dataflow over the CFG (a block's
// entry state is the union over predecessors), then an in-order scan inside
// each block. Because the merge is a union, a finding means *no* path from
// entry initializes the location — reading truly undefined memory, which
// interpretation and synthesis both turn into garbage.
func checkUninitLoad(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "uninit-load"
	for _, ai := range collectAllocas(ctx) {
		if ai.escaped || len(ai.loads) == 0 {
			continue
		}
		gen := map[*llvm.Block]bool{}
		for _, st := range ai.stores {
			gen[st.Parent] = true
		}
		// Forward may-init to fixpoint over reverse postorder.
		in := map[*llvm.Block]bool{}
		outB := map[*llvm.Block]bool{}
		for changed := true; changed; {
			changed = false
			for _, b := range ctx.CFG.Order {
				inb := false
				for _, p := range ctx.CFG.Preds[b] {
					if outB[p] {
						inb = true
						break
					}
				}
				ob := inb || gen[b]
				if in[b] != inb || outB[b] != ob {
					in[b], outB[b] = inb, ob
					changed = true
				}
			}
		}
		for _, b := range ctx.CFG.Order {
			cur := in[b]
			for _, i := range b.Instrs {
				switch i.Op {
				case llvm.OpStore:
					if ai.derived[i.Args[1]] {
						cur = true
					}
				case llvm.OpLoad:
					if ai.derived[i.Args[0]] && !cur {
						out = append(out, ctx.diag(diag.SevError, check, b, i,
							fmt.Sprintf("load from %s reads memory no path has initialized", ai.root.Ident()),
							"store an initial value on every path before this load"))
					}
				}
			}
		}
	}
	return out
}

// checkDeadStore flags a store overwritten by a later same-address store in
// the same block with no intervening read: the first store's value can never
// be observed. Calls and loads of the same base end the window (they may
// read the location); the address comparison is the scheduler's own
// SameAddress, so "provably same" here matches what synthesis serializes.
func checkDeadStore(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "dead-store"
	for _, b := range ctx.F.Blocks {
		for i, st := range b.Instrs {
			if st.Op != llvm.OpStore {
				continue
			}
			base := hls.BaseOf(st.Args[1])
		window:
			for _, later := range b.Instrs[i+1:] {
				switch later.Op {
				case llvm.OpCall:
					break window
				case llvm.OpLoad:
					if hls.BaseOf(later.Args[0]) == base {
						break window
					}
				case llvm.OpStore:
					if hls.SameAddress(st.Args[1], later.Args[1]) {
						out = append(out, ctx.diag(diag.SevWarning, check, b, st,
							fmt.Sprintf("store to %s is overwritten before any read", st.Args[1].Ident()),
							"remove the dead store or reorder the computation"))
						break window
					}
				}
			}
		}
	}
	return out
}

// checkDeadAlloca flags non-escaping allocas that are never loaded: the
// allocation (and every store into it) is dead weight that synthesis would
// still spend memory ports and BRAM on.
func checkDeadAlloca(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "dead-alloca"
	for _, ai := range collectAllocas(ctx) {
		if ai.escaped || len(ai.loads) > 0 {
			continue
		}
		msg := fmt.Sprintf("local allocation %s is never read", ai.root.Ident())
		if len(ai.stores) > 0 {
			msg += fmt.Sprintf(" (%d store(s) into it are dead)", len(ai.stores))
		}
		out = append(out, ctx.diag(diag.SevWarning, check, ai.root.Parent, ai.root,
			msg, "delete the allocation and its stores"))
	}
	return out
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/llvm"
)

// checkGEPBounds verifies GEP indices against the static array shapes the
// HLS backend requires. Constant indices outside a dimension are errors (the
// access is wrong on every execution); variable indices are checked against
// their value range from the interval analysis and flagged as warnings when
// the range can leave the dimension. The interval domain covers every affine
// induction pattern the old reasoning handled, plus non-affine bounded
// indices (masked, clamped, guarded), and branch refinement keeps accesses
// under an explicit bounds guard silent.
func checkGEPBounds(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "gep-bounds"
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpGEP || in.SrcElem == nil || !in.SrcElem.IsArray() {
				continue
			}
			// With an array source element type and inner indices present,
			// the leading index selects among whole array objects and must
			// be zero for a single allocation.
			if len(in.Args) > 2 {
				if c, ok := in.Args[1].(*llvm.ConstInt); ok && c.Val != 0 {
					out = append(out, ctx.diag(diag.SevError, check, b, in,
						fmt.Sprintf("leading GEP index %d steps past the allocated array object", c.Val), ""))
				}
			}
			ty := in.SrcElem
			for k := 2; k < len(in.Args) && ty != nil && ty.IsArray(); k++ {
				out = append(out, boundsForIndex(ctx, b, in, in.Args[k], ty.N, k-1)...)
				ty = ty.Elem
			}
		}
	}
	return out
}

// boundsForIndex checks one dimension's index (dimension size n, 1-based
// position dim for messages).
func boundsForIndex(ctx *FuncContext, b *llvm.Block, gep *llvm.Instr, idx llvm.Value, n int64, dim int) diag.Diagnostics {
	const check = "gep-bounds"
	if c, ok := idx.(*llvm.ConstInt); ok {
		if c.Val < 0 || c.Val >= n {
			return diag.Diagnostics{ctx.diag(diag.SevError, check, b, gep,
				fmt.Sprintf("constant index %d is outside dimension %d of size %d", c.Val, dim, n), "")}
		}
		return nil
	}
	iv := ctx.Intervals()
	if iv.Unreachable(b) {
		return nil // the access can never execute; unreachable-code reports it
	}
	r := iv.At(b, idx)
	// Unbounded means unknown, and unknown stays silent: a check that fires
	// on Top would flag every data-dependent index.
	if !r.Bounded() {
		return nil
	}
	if r.Lo < 0 || r.Hi >= n {
		// The affine dependence engine evaluates the index exactly over its
		// loops' iteration spaces; a proven in-bounds range suppresses an
		// interval false positive (intervals widen through multiplications the
		// adaptor's linearized addressing uses). It only ever suppresses —
		// guarded accesses are refined by branch conditions the affine form
		// does not see, so firing from the affine range alone would be wrong.
		if lo, hi, ok := ctx.DepEngine().IndexRange(idx); ok && lo >= 0 && hi < n {
			return nil
		}
		d := ctx.diag(diag.SevWarning, check, b, gep,
			fmt.Sprintf("index spans [%d, %d], outside dimension %d of size %d",
				r.Lo, r.Hi, dim, n),
			"shrink the loop bound or the index expression to fit the array, or guard the access")
		d.Explanation = fmt.Sprintf("value range of %s at block %%%s: %s; dimension %d requires [0, %d]",
			idx.Ident(), b.Name, r, dim, n-1)
		if form, ok := ctx.DepEngine().IndexForm(idx); ok {
			d.Explanation += fmt.Sprintf("; affine form: %s", form)
		}
		return diag.Diagnostics{d}
	}
	return nil
}

package lint

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// checkGEPBounds verifies GEP indices against the static array shapes the
// HLS backend requires. Constant indices outside a dimension are errors (the
// access is wrong on every execution); indices affine in a loop induction
// variable are evaluated over the loop's full iteration range and flagged as
// warnings when the range can leave the dimension.
func checkGEPBounds(ctx *FuncContext) diag.Diagnostics {
	var out diag.Diagnostics
	const check = "gep-bounds"
	for _, b := range ctx.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpGEP || in.SrcElem == nil || !in.SrcElem.IsArray() {
				continue
			}
			// With an array source element type and inner indices present,
			// the leading index selects among whole array objects and must
			// be zero for a single allocation.
			if len(in.Args) > 2 {
				if c, ok := in.Args[1].(*llvm.ConstInt); ok && c.Val != 0 {
					out = append(out, ctx.diag(diag.SevError, check, b, in,
						fmt.Sprintf("leading GEP index %d steps past the allocated array object", c.Val), ""))
				}
			}
			ty := in.SrcElem
			for k := 2; k < len(in.Args) && ty != nil && ty.IsArray(); k++ {
				out = append(out, boundsForIndex(ctx, b, in, in.Args[k], ty.N, k-1)...)
				ty = ty.Elem
			}
		}
	}
	return out
}

// boundsForIndex checks one dimension's index (dimension size n, 1-based
// position dim for messages).
func boundsForIndex(ctx *FuncContext, b *llvm.Block, gep *llvm.Instr, idx llvm.Value, n int64, dim int) diag.Diagnostics {
	const check = "gep-bounds"
	if c, ok := idx.(*llvm.ConstInt); ok {
		if c.Val < 0 || c.Val >= n {
			return diag.Diagnostics{ctx.diag(diag.SevError, check, b, gep,
				fmt.Sprintf("constant index %d is outside dimension %d of size %d", c.Val, dim, n), "")}
		}
		return nil
	}
	// Affine-in-IV index: evaluate the range over the enclosing loops'
	// induction variables, innermost outward.
	for l := ctx.loopOf(b); l != nil; l = l.Parent {
		iv, ok := analysis.InductionVar(l)
		if !ok {
			continue
		}
		a, off, ok := affineOfIV(idx, iv.Phi, 8)
		if !ok {
			continue
		}
		if iv.Trip() <= 0 {
			return nil // loop body never runs
		}
		lo := a*iv.Start + off
		hi := a*iv.Last() + off
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < 0 || hi >= n {
			return diag.Diagnostics{ctx.diag(diag.SevWarning, check, b, gep,
				fmt.Sprintf("induction-ranged index spans [%d, %d], outside dimension %d of size %d",
					lo, hi, dim, n),
				"shrink the loop bound or the index expression to fit the array")}
		}
		return nil
	}
	return nil
}

// affineOfIV decomposes v as a*phi + b over integer arithmetic, with
// ok=false when v involves anything other than the given phi, constants,
// and +,-,*,<<,ext/trunc combinations of them.
func affineOfIV(v llvm.Value, phi *llvm.Instr, depth int) (a, b int64, ok bool) {
	if v == phi {
		return 1, 0, true
	}
	if c, okc := v.(*llvm.ConstInt); okc {
		return 0, c.Val, true
	}
	if depth == 0 {
		return 0, 0, false
	}
	in, okIn := v.(*llvm.Instr)
	if !okIn {
		return 0, 0, false
	}
	switch in.Op {
	case llvm.OpSExt, llvm.OpZExt, llvm.OpTrunc:
		return affineOfIV(in.Args[0], phi, depth-1)
	case llvm.OpAdd:
		a1, b1, ok1 := affineOfIV(in.Args[0], phi, depth-1)
		a2, b2, ok2 := affineOfIV(in.Args[1], phi, depth-1)
		if ok1 && ok2 {
			return a1 + a2, b1 + b2, true
		}
	case llvm.OpSub:
		a1, b1, ok1 := affineOfIV(in.Args[0], phi, depth-1)
		a2, b2, ok2 := affineOfIV(in.Args[1], phi, depth-1)
		if ok1 && ok2 {
			return a1 - a2, b1 - b2, true
		}
	case llvm.OpMul:
		a1, b1, ok1 := affineOfIV(in.Args[0], phi, depth-1)
		a2, b2, ok2 := affineOfIV(in.Args[1], phi, depth-1)
		if ok1 && ok2 {
			// One side must be constant to stay affine.
			if a1 == 0 {
				return b1 * a2, b1 * b2, true
			}
			if a2 == 0 {
				return a1 * b2, b1 * b2, true
			}
		}
	case llvm.OpShl:
		a1, b1, ok1 := affineOfIV(in.Args[0], phi, depth-1)
		if c, okc := in.Args[1].(*llvm.ConstInt); ok1 && okc && c.Val >= 0 && c.Val < 63 {
			return a1 << uint(c.Val), b1 << uint(c.Val), true
		}
	}
	return 0, 0, false
}

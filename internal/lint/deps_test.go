package lint

import (
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/llvm"
)

// nestFunc builds a canonical two-deep nest over a pointer-to-[16 x float]
// parameter:
//
//	for i in [0, tripI) { for j in [0, tripJ) { body(b, i, j, arr) } }
func nestFunc(t *testing.T, tripI, tripJ int64, body func(b *llvm.Builder, i, j, arr llvm.Value)) *llvm.Function {
	t.Helper()
	arr := &llvm.Param{Name: "arr", Ty: llvm.Ptr(llvm.ArrayOf(16, llvm.FloatT()))}
	f := llvm.NewFunction("nest", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	hi := f.AddBlock("hi")
	hj := f.AddBlock("hj")
	bb := f.AddBlock("body")
	latchI := f.AddBlock("latch.i")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(hi)
	b.SetBlock(hi)
	i := b.Phi(llvm.I64())
	b.CondBr(b.ICmp("slt", i, llvm.CI(llvm.I64(), tripI)), hj, exit)
	b.SetBlock(hj)
	j := b.Phi(llvm.I64())
	b.CondBr(b.ICmp("slt", j, llvm.CI(llvm.I64(), tripJ)), bb, latchI)
	b.SetBlock(bb)
	body(b, i, j, arr)
	nextJ := b.Add(j, llvm.CI(llvm.I64(), 1))
	b.Br(hj)
	b.SetBlock(latchI)
	nextI := b.Add(i, llvm.CI(llvm.I64(), 1))
	b.Br(hi)
	b.SetBlock(exit)
	b.Ret(nil)
	i.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	i.AddIncoming(nextI, latchI)
	j.AddIncoming(llvm.CI(llvm.I64(), 0), hi)
	j.AddIncoming(nextJ, bb)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f
}

// TestLoopCarriedDepOuterLoopFiring: for i { for j { A[j] = A[j] + 1 } }.
// The j loop rewrites each cell within one iteration (dependence distance 0
// at j — the engine proves independence), but every i iteration reads the
// values the previous one stored: a recurrence carried by the OUTER loop
// that the old innermost-only check never saw. Exactly one finding, at %hi.
func TestLoopCarriedDepOuterLoopFiring(t *testing.T) {
	f := nestFunc(t, 4, 16, func(b *llvm.Builder, i, j, arr llvm.Value) {
		p := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), j)
		b.Store(b.FAdd(b.Load(llvm.FloatT(), p), llvm.CF(llvm.FloatT(), 1)), p)
	})
	ds := runCheck(modOf(f), "loop-carried-dep")
	if len(ds) != 1 || ds[0].Severity != diag.SevInfo {
		t.Fatalf("want exactly 1 info (the outer-loop recurrence), got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "loop %hi") {
		t.Errorf("finding should blame the outer loop: %s", ds[0].Message)
	}
	if !strings.Contains(ds[0].Message, "direction <") {
		t.Errorf("the i coefficient is zero, so only the direction is provable: %s", ds[0].Message)
	}
	if strings.Contains(ds[0].Message, "RecMII") {
		t.Errorf("outer loops have no pipeline II of their own: %s", ds[0].Message)
	}
}

// TestLoopCarriedDepExactDistance: A[i] = A[i-1] + 1 is a strong-SIV
// recurrence the engine pins at exactly distance 1; the finding must quote
// it alongside the RecMII floor.
func TestLoopCarriedDepExactDistance(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		lp := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), b.Sub(iv, llvm.CI(llvm.I64(), 1)))
		sp := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(b.FAdd(b.Load(llvm.FloatT(), lp), llvm.CF(llvm.FloatT(), 1)), sp)
	})
	ds := runCheck(modOf(f), "loop-carried-dep")
	if len(ds) != 1 || ds[0].Severity != diag.SevInfo {
		t.Fatalf("want 1 info, got %v", ds)
	}
	if !strings.Contains(ds[0].Message, "distance=1") {
		t.Errorf("strong-SIV pair should report its exact distance: %s", ds[0].Message)
	}
	if !strings.Contains(ds[0].Message, "RecMII") {
		t.Errorf("innermost finding should quote the RecMII: %s", ds[0].Message)
	}
	if !strings.Contains(ds[0].Explanation, "tests:") {
		t.Errorf("explanation should list the deciding tests: %s", ds[0].Explanation)
	}
}

// TestLoopCarriedDepExonerated: A[i] = A[i+1] (reading ahead) carries
// nothing forward — the dependence distance would be negative. The alias
// model alone cannot tell; the affine engine must stay silent.
func TestLoopCarriedDepExonerated(t *testing.T) {
	f := loopFunc(t, 16, nil, func(b *llvm.Builder, iv, arr llvm.Value) {
		lp := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), b.Add(iv, llvm.CI(llvm.I64(), 1)))
		sp := b.GEP(arrTy(), arr, llvm.CI(llvm.I64(), 0), iv)
		b.Store(b.FAdd(b.Load(llvm.FloatT(), lp), llvm.CF(llvm.FloatT(), 1)), sp)
	})
	if ds := runCheck(modOf(f), "loop-carried-dep"); len(ds) != 0 {
		t.Errorf("reading ahead carries nothing across iterations: %v", ds)
	}
}

// Package lint implements the static analyses of the hls-lint subsystem:
// SSA and memory-safety invariants over the LLVM-like IR, array-bounds
// reasoning against the static shapes HLS synthesis requires, loop-carried
// dependence detection, and HLS-directive feasibility lints. Checks reuse
// internal/llvm/analysis (CFG, dominators, loops, induction variables) and
// the scheduler's dependence model (internal/hls.RecMII), so diagnostics
// agree with what synthesis will actually do.
//
// The package is consumed three ways: cmd/hls-lint reports all checks, the
// pass managers' verify-each mode runs the invariant subset after every
// pass, and the DSE feasibility pre-check (MinPipelineFloor) prunes
// II-infeasible directive points before scheduling.
package lint

import (
	"repro/internal/absint"
	"repro/internal/bitwidth"
	"repro/internal/deptest"
	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// Check is one registered analysis.
type Check struct {
	Name string
	Desc string
	// Full is the long-form rule documentation: what the analysis proves and
	// what evidence a finding rests on. Rendered into SARIF rule metadata.
	Full string
	// Help is remediation guidance shown next to the rule.
	Help string
	// Invariant marks checks that must hold after every pass; the pass
	// managers' verify-each mode runs exactly this subset.
	Invariant bool
	Run       func(*FuncContext) diag.Diagnostics
}

// registry lists every check in reporting order.
var registry = []Check{
	{
		Name:      "ssa-dominance",
		Desc:      "every operand's definition dominates its use (stricter than Verify)",
		Full:      "Walks the dominator tree and rejects any instruction operand whose definition does not dominate the use. The structural verifier accepts such modules; this check is the stricter layer that passes must preserve.",
		Help:      "A pass reordered or moved an instruction above its operand's definition; re-run with verify-each to name the offending pass.",
		Invariant: true,
		Run:       checkSSADominance,
	},
	{
		Name:      "uninit-load",
		Desc:      "loads from local allocas that no path has initialized",
		Full:      "Forward dataflow over the CFG tracking which allocas every path has stored to; a load reached by any path with no prior store reads undefined memory, which synthesis turns into an uninitialized register.",
		Help:      "Initialize the alloca on every path before the first load, or hoist a defining store into the entry block.",
		Invariant: true,
		Run:       checkUninitLoad,
	},
	{
		Name: "dead-store",
		Desc: "stores overwritten before any read",
		Full: "Flags a store whose stored value is overwritten by a later store to the same address with no intervening load: wasted work and usually a sign of a dropped accumulator update.",
		Help: "Delete the dead store or move the intended read between the two stores.",
		Run:  checkDeadStore,
	},
	{
		Name: "dead-alloca",
		Desc: "local allocations never read",
		Full: "Flags allocas that are written but never loaded: the buffer occupies BRAM in synthesis yet no result depends on it.",
		Help: "Remove the allocation or wire its contents to the consumer that was meant to read it.",
		Run:  checkDeadAlloca,
	},
	{
		Name:      "gep-bounds",
		Desc:      "constant and induction-ranged GEP indices within static array bounds",
		Full:      "Checks every GEP index against the static array shape, using constant folding, interval analysis with branch refinement, and the affine access functions the dependence engine recovers; an index whose loop-exact range stays inside the dimension is proven safe even when its interval alone is not.",
		Help:      "Tighten the loop bound or guard the access; the finding's -explain output shows the index range and affine form the analysis derived.",
		Invariant: true,
		Run:       checkGEPBounds,
	},
	{
		Name: "loop-carried-dep",
		Desc: "memory recurrences that will constrain pipeline II",
		Full: "Runs the affine dependence-test engine (ZIV/SIV/MIV classification, GCD and Banerjee tests over recovered loop nests) on every may-aliasing store/load pair at every loop level, reporting the exact dependence distance where the accesses are affine and falling back to the structural same-address model elsewhere. A carried flow dependence bounds any pipeline of that loop at RecMII = ceil(latency / distance).",
		Help: "The code is correct; the finding explains why an aggressive II cannot be met. Restructure the recurrence (e.g. accumulate in a register) or accept the reported RecMII as the II floor.",
		Run:  checkLoopCarriedDep,
	},
	{
		Name: "hls-directives",
		Desc: "infeasible, conflicting, or ignored HLS directives",
		Full: "Validates pipeline, unroll, and array-partition directives against the dependence-implied RecMII floor, trip counts, and array shapes, so requests the scheduler will silently degrade are surfaced at lint time.",
		Help: "Raise the requested II to at least the reported floor, pick an unroll factor dividing the trip count, or shrink the partition factor to the dimension size.",
		Run:  checkDirectives,
	},
	{
		Name:      "div-by-zero",
		Desc:      "integer divisions whose divisor range includes zero",
		Full:      "Interval analysis over every sdiv/udiv/srem/urem divisor; a range containing zero is undefined behavior in the source and a hang or X-propagation in hardware.",
		Help:      "Guard the division or refine the divisor's range with a branch the analysis can see.",
		Invariant: true,
		Run:       checkDivByZero,
	},
	{
		Name: "shift-width",
		Desc: "shift amounts that can reach or exceed the operand width",
		Full: "Interval analysis over shift amounts: shifting an i-N value by N or more is undefined in the source IR and synthesizes to a mux tree with an undriven branch.",
		Help: "Mask the shift amount to the operand width or tighten the range that feeds it.",
		Run:  checkShiftWidth,
	},
	{
		Name: "unreachable-code",
		Desc: "blocks no execution can reach (constant branch conditions)",
		Full: "Sparse conditional constant propagation marks blocks no execution reaches; they cost area and usually indicate a condition folded further than intended.",
		Help: "Delete the unreachable region or fix the branch condition that constant-folds.",
		Run:  checkUnreachableCode,
	},
	{
		Name: "overflow-possible",
		Desc: "integer arithmetic whose inferred result range leaves the declared type",
		Full: "Fuses known-bits and interval analysis into a signed range per operand and recomputes each add/sub/mul without the type clamp; when the unclamped range leaves the declared width the operation can wrap on inputs the analysis could not exclude. Silent when an operand is unbounded within its type, so data-dependent arithmetic does not drown the report.",
		Help: "Widen the type, or tighten the operand ranges with a guard or mask the analysis can see; the -explain output shows both operand ranges and the unclamped result range.",
		Run:  checkOverflowPossible,
	},
	{
		Name: "truncating-store",
		Desc: "stores of truncated values whose pre-trunc range exceeds the stored width",
		Full: "Finds store instructions fed by a trunc whose operand's inferred range does not fit the destination width: high bits the producer computed are silently dropped at the memory boundary. Silent when the source is unbounded within its own type.",
		Help: "Store the full width, or prove the value narrow with a mask or guard before the trunc.",
		Run:  checkTruncatingStore,
	},
	{
		Name: "redundant-mask",
		Desc: "and-masks proven no-ops by known-bits analysis",
		Full: "Flags `and x, C` where every bit the constant mask clears is already known zero in x: the mask never changes any value and occupies LUTs. The known-bits domain tracks per-bit facts through arithmetic, shifts, and masked branch conditions.",
		Help: "Delete the and and use x directly; the -explain output shows the known-bits fact that proves the mask redundant.",
		Run:  checkRedundantMask,
	},
	{
		Name: "redundant-ext",
		Desc: "zero/sign extensions whose extended bits no consumer observes",
		Full: "Backward demanded-bits analysis over the SSA graph: a zext/sext whose demanded result bits all lie inside the source width feeds only consumers that ignore the extension, so it is pure wiring a narrower datapath would avoid.",
		Help: "Use the narrow value directly, or push the extension to the single consumer that needs it.",
		Run:  checkRedundantExt,
	},
}

// RuleMetadata returns the SARIF rule table for every registered check:
// short and full descriptions plus remediation help, keyed by check name.
func RuleMetadata() map[string]diag.RuleMeta {
	meta := make(map[string]diag.RuleMeta, len(registry))
	for _, c := range registry {
		meta[c.Name] = diag.RuleMeta{Short: c.Desc, Full: c.Full, Help: c.Help}
	}
	return meta
}

// Checks returns the registered checks in reporting order.
func Checks() []Check {
	return append([]Check(nil), registry...)
}

// CheckNames returns the registered check names in reporting order.
func CheckNames() []string {
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name
	}
	return names
}

// Options selects which checks run and against which synthesis target.
type Options struct {
	// Enabled restricts the run to the named checks; nil runs all of them.
	Enabled map[string]bool
	// InvariantsOnly restricts the run to invariant checks (the verify-each
	// subset), intersected with Enabled when both are set.
	InvariantsOnly bool
	// Target provides the dependence/latency model; zero value means
	// hls.DefaultTarget().
	Target hls.Target
}

// FuncContext carries one function's analyses, shared by every check.
type FuncContext struct {
	M      *llvm.Module
	F      *llvm.Function
	CFG    *analysis.CFG
	Dom    *analysis.DomTree
	Loops  *analysis.LoopInfo
	Target hls.Target

	blockPos map[*llvm.Block]int
	instrPos map[*llvm.Instr]int

	// Abstract-interpretation results, computed on first use so checks that
	// do not need them cost nothing.
	intervals *absint.IntervalResult
	pts       *absint.PointsToResult
	sccp      *absint.SCCPResult
	dep       *deptest.Engine
	bw        *bitwidth.Analysis
}

// DepEngine returns the function's affine dependence-test engine (lazily
// computed). It is constructed exactly as the synthesis estimator builds its
// own — same loop info, same points-to oracle — so lint verdicts and
// scheduler RecMII agree.
func (ctx *FuncContext) DepEngine() *deptest.Engine {
	if ctx.dep == nil {
		ctx.dep = deptest.New(ctx.F, ctx.Loops, ctx.PointsTo().MayAlias)
	}
	return ctx.dep
}

// Intervals returns the function's value-range analysis (lazily computed).
func (ctx *FuncContext) Intervals() *absint.IntervalResult {
	if ctx.intervals == nil {
		ctx.intervals = absint.Intervals(ctx.F)
	}
	return ctx.intervals
}

// PointsTo returns the function's points-to analysis (lazily computed).
func (ctx *FuncContext) PointsTo() *absint.PointsToResult {
	if ctx.pts == nil {
		ctx.pts = absint.PointsTo(ctx.F)
	}
	return ctx.pts
}

// SCCP returns the function's conditional constant propagation (lazily
// computed).
func (ctx *FuncContext) SCCP() *absint.SCCPResult {
	if ctx.sccp == nil {
		ctx.sccp = absint.SCCP(ctx.F)
	}
	return ctx.sccp
}

// newFuncContext computes the shared analyses for f.
func newFuncContext(m *llvm.Module, f *llvm.Function, tgt hls.Target) *FuncContext {
	cfg := analysis.NewCFG(f)
	dom := analysis.NewDomTree(cfg)
	ctx := &FuncContext{
		M: m, F: f, CFG: cfg, Dom: dom,
		Loops: analysis.FindLoops(cfg, dom),
		// Under the inferred cost model the directive-feasibility floors
		// price operators at analyzed widths (no-op for the declared model).
		Target:   tgt.ResolveWidths(f),
		blockPos: map[*llvm.Block]int{},
		instrPos: map[*llvm.Instr]int{},
	}
	for bi, b := range f.Blocks {
		ctx.blockPos[b] = bi
		for ii, in := range b.Instrs {
			ctx.instrPos[in] = ii
		}
	}
	return ctx
}

// diag builds a located diagnostic. b and in may be nil for function- and
// block-level findings.
func (ctx *FuncContext) diag(sev diag.Severity, check string, b *llvm.Block, in *llvm.Instr, msg, suggestion string) diag.Diagnostic {
	d := diag.Diagnostic{
		Severity: sev, Check: check, Func: ctx.F.Name,
		Message: msg, Suggestion: suggestion,
		BlockPos: -1, InstrPos: -1,
	}
	if b != nil {
		d.Block = b.Name
		d.BlockPos = ctx.blockPos[b]
	}
	if in != nil {
		d.Instr = instrLabel(in)
		d.InstrPos = ctx.instrPos[in]
		if in.Parent != nil && b == nil {
			d.Block = in.Parent.Name
			d.BlockPos = ctx.blockPos[in.Parent]
		}
	}
	return d
}

// instrLabel names an instruction for diagnostics: its SSA result name, or
// its opcode for void instructions.
func instrLabel(in *llvm.Instr) string {
	if in.Name != "" {
		return in.Name
	}
	return string(in.Op)
}

// loopOf returns the innermost loop containing b, or nil.
func (ctx *FuncContext) loopOf(b *llvm.Block) *analysis.Loop {
	var best *analysis.Loop
	for _, l := range ctx.Loops.Loops {
		if l.Contains(b) && (best == nil || l.Depth() > best.Depth()) {
			best = l
		}
	}
	return best
}

// Module runs the selected checks over every defined function and returns
// the sorted findings.
func Module(m *llvm.Module, opts Options) diag.Diagnostics {
	tgt := opts.Target
	if tgt.ClockNs == 0 {
		tgt = hls.DefaultTarget()
	}
	var out diag.Diagnostics
	for _, f := range m.Funcs {
		if f.IsDecl || len(f.Blocks) == 0 {
			continue
		}
		ctx := newFuncContext(m, f, tgt)
		for _, c := range registry {
			if opts.Enabled != nil && !opts.Enabled[c.Name] {
				continue
			}
			if opts.InvariantsOnly && !c.Invariant {
				continue
			}
			out = append(out, c.Run(ctx)...)
		}
	}
	out.Sort()
	out.AssignIDs()
	return out
}

// Invariants runs the invariant subset and converts error-severity findings
// into a single error (nil when the module is clean). This is the hook the
// pass managers call between passes.
func Invariants(m *llvm.Module) error {
	return Module(m, Options{InvariantsOnly: true}).AsError()
}

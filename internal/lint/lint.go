// Package lint implements the static analyses of the hls-lint subsystem:
// SSA and memory-safety invariants over the LLVM-like IR, array-bounds
// reasoning against the static shapes HLS synthesis requires, loop-carried
// dependence detection, and HLS-directive feasibility lints. Checks reuse
// internal/llvm/analysis (CFG, dominators, loops, induction variables) and
// the scheduler's dependence model (internal/hls.RecMII), so diagnostics
// agree with what synthesis will actually do.
//
// The package is consumed three ways: cmd/hls-lint reports all checks, the
// pass managers' verify-each mode runs the invariant subset after every
// pass, and the DSE feasibility pre-check (MinPipelineFloor) prunes
// II-infeasible directive points before scheduling.
package lint

import (
	"repro/internal/absint"
	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// Check is one registered analysis.
type Check struct {
	Name string
	Desc string
	// Invariant marks checks that must hold after every pass; the pass
	// managers' verify-each mode runs exactly this subset.
	Invariant bool
	Run       func(*FuncContext) diag.Diagnostics
}

// registry lists every check in reporting order.
var registry = []Check{
	{
		Name:      "ssa-dominance",
		Desc:      "every operand's definition dominates its use (stricter than Verify)",
		Invariant: true,
		Run:       checkSSADominance,
	},
	{
		Name:      "uninit-load",
		Desc:      "loads from local allocas that no path has initialized",
		Invariant: true,
		Run:       checkUninitLoad,
	},
	{
		Name: "dead-store",
		Desc: "stores overwritten before any read",
		Run:  checkDeadStore,
	},
	{
		Name: "dead-alloca",
		Desc: "local allocations never read",
		Run:  checkDeadAlloca,
	},
	{
		Name:      "gep-bounds",
		Desc:      "constant and induction-ranged GEP indices within static array bounds",
		Invariant: true,
		Run:       checkGEPBounds,
	},
	{
		Name: "loop-carried-dep",
		Desc: "memory recurrences that will constrain pipeline II",
		Run:  checkLoopCarriedDep,
	},
	{
		Name: "hls-directives",
		Desc: "infeasible, conflicting, or ignored HLS directives",
		Run:  checkDirectives,
	},
	{
		Name:      "div-by-zero",
		Desc:      "integer divisions whose divisor range includes zero",
		Invariant: true,
		Run:       checkDivByZero,
	},
	{
		Name: "shift-width",
		Desc: "shift amounts that can reach or exceed the operand width",
		Run:  checkShiftWidth,
	},
	{
		Name: "unreachable-code",
		Desc: "blocks no execution can reach (constant branch conditions)",
		Run:  checkUnreachableCode,
	},
}

// Checks returns the registered checks in reporting order.
func Checks() []Check {
	return append([]Check(nil), registry...)
}

// CheckNames returns the registered check names in reporting order.
func CheckNames() []string {
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name
	}
	return names
}

// Options selects which checks run and against which synthesis target.
type Options struct {
	// Enabled restricts the run to the named checks; nil runs all of them.
	Enabled map[string]bool
	// InvariantsOnly restricts the run to invariant checks (the verify-each
	// subset), intersected with Enabled when both are set.
	InvariantsOnly bool
	// Target provides the dependence/latency model; zero value means
	// hls.DefaultTarget().
	Target hls.Target
}

// FuncContext carries one function's analyses, shared by every check.
type FuncContext struct {
	M      *llvm.Module
	F      *llvm.Function
	CFG    *analysis.CFG
	Dom    *analysis.DomTree
	Loops  *analysis.LoopInfo
	Target hls.Target

	blockPos map[*llvm.Block]int
	instrPos map[*llvm.Instr]int

	// Abstract-interpretation results, computed on first use so checks that
	// do not need them cost nothing.
	intervals *absint.IntervalResult
	pts       *absint.PointsToResult
	sccp      *absint.SCCPResult
}

// Intervals returns the function's value-range analysis (lazily computed).
func (ctx *FuncContext) Intervals() *absint.IntervalResult {
	if ctx.intervals == nil {
		ctx.intervals = absint.Intervals(ctx.F)
	}
	return ctx.intervals
}

// PointsTo returns the function's points-to analysis (lazily computed).
func (ctx *FuncContext) PointsTo() *absint.PointsToResult {
	if ctx.pts == nil {
		ctx.pts = absint.PointsTo(ctx.F)
	}
	return ctx.pts
}

// SCCP returns the function's conditional constant propagation (lazily
// computed).
func (ctx *FuncContext) SCCP() *absint.SCCPResult {
	if ctx.sccp == nil {
		ctx.sccp = absint.SCCP(ctx.F)
	}
	return ctx.sccp
}

// newFuncContext computes the shared analyses for f.
func newFuncContext(m *llvm.Module, f *llvm.Function, tgt hls.Target) *FuncContext {
	cfg := analysis.NewCFG(f)
	dom := analysis.NewDomTree(cfg)
	ctx := &FuncContext{
		M: m, F: f, CFG: cfg, Dom: dom,
		Loops:    analysis.FindLoops(cfg, dom),
		Target:   tgt,
		blockPos: map[*llvm.Block]int{},
		instrPos: map[*llvm.Instr]int{},
	}
	for bi, b := range f.Blocks {
		ctx.blockPos[b] = bi
		for ii, in := range b.Instrs {
			ctx.instrPos[in] = ii
		}
	}
	return ctx
}

// diag builds a located diagnostic. b and in may be nil for function- and
// block-level findings.
func (ctx *FuncContext) diag(sev diag.Severity, check string, b *llvm.Block, in *llvm.Instr, msg, suggestion string) diag.Diagnostic {
	d := diag.Diagnostic{
		Severity: sev, Check: check, Func: ctx.F.Name,
		Message: msg, Suggestion: suggestion,
		BlockPos: -1, InstrPos: -1,
	}
	if b != nil {
		d.Block = b.Name
		d.BlockPos = ctx.blockPos[b]
	}
	if in != nil {
		d.Instr = instrLabel(in)
		d.InstrPos = ctx.instrPos[in]
		if in.Parent != nil && b == nil {
			d.Block = in.Parent.Name
			d.BlockPos = ctx.blockPos[in.Parent]
		}
	}
	return d
}

// instrLabel names an instruction for diagnostics: its SSA result name, or
// its opcode for void instructions.
func instrLabel(in *llvm.Instr) string {
	if in.Name != "" {
		return in.Name
	}
	return string(in.Op)
}

// loopOf returns the innermost loop containing b, or nil.
func (ctx *FuncContext) loopOf(b *llvm.Block) *analysis.Loop {
	var best *analysis.Loop
	for _, l := range ctx.Loops.Loops {
		if l.Contains(b) && (best == nil || l.Depth() > best.Depth()) {
			best = l
		}
	}
	return best
}

// Module runs the selected checks over every defined function and returns
// the sorted findings.
func Module(m *llvm.Module, opts Options) diag.Diagnostics {
	tgt := opts.Target
	if tgt.ClockNs == 0 {
		tgt = hls.DefaultTarget()
	}
	var out diag.Diagnostics
	for _, f := range m.Funcs {
		if f.IsDecl || len(f.Blocks) == 0 {
			continue
		}
		ctx := newFuncContext(m, f, tgt)
		for _, c := range registry {
			if opts.Enabled != nil && !opts.Enabled[c.Name] {
				continue
			}
			if opts.InvariantsOnly && !c.Invariant {
				continue
			}
			out = append(out, c.Run(ctx)...)
		}
	}
	out.Sort()
	out.AssignIDs()
	return out
}

// Invariants runs the invariant subset and converts error-severity findings
// into a single error (nil when the module is clean). This is the hook the
// pass managers call between passes.
func Invariants(m *llvm.Module) error {
	return Module(m, Options{InvariantsOnly: true}).AsError()
}

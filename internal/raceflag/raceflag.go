//go:build !race

// Package raceflag reports whether the race detector instruments this
// build. Timing assertions skip under the detector: instrumentation slows
// hot paths by unrelated, uneven factors, so a speedup bound that holds on
// a plain build is meaningless there.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false

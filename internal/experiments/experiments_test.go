package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellF(tst *testing.T, t *Table, row int, col string) float64 {
	tst.Helper()
	v, err := strconv.ParseFloat(cell(t, row, col), 64)
	if err != nil {
		tst.Fatalf("cell %s[%d] = %q not numeric", col, row, cell(t, row, col))
	}
	return v
}

func TestTable1Characteristics(t *testing.T) {
	tab, err := Table1(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 14 {
		t.Fatalf("want >= 14 kernels, got %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellF(t, tab, i, "loops") < 2 {
			t.Errorf("%s: implausible loop count", cell(tab, i, "kernel"))
		}
		if cellF(t, tab, i, "fp-ops/iter") < 1 {
			t.Errorf("%s: no fp ops", cell(tab, i, "kernel"))
		}
	}
}

func TestTable2GapClosed(t *testing.T) {
	tab, err := Table2(Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		name := cell(tab, i, "kernel")
		if cellF(t, tab, i, "violations") == 0 {
			t.Errorf("%s: raw IR should violate the gate", name)
		}
		if cellF(t, tab, i, "adaptor-fixes") == 0 {
			t.Errorf("%s: adaptor should apply fixes", name)
		}
		if cellF(t, tab, i, "descriptor") == 0 {
			t.Errorf("%s: descriptor fixes expected on every kernel", name)
		}
	}
}

// TestFig4Fig5Comparable checks the paper's headline shape: latencies track
// within a modest band on every kernel, both unoptimized and optimized.
func TestFig4Fig5Comparable(t *testing.T) {
	for _, fn := range []func(Config) (*Table, error){Fig4, Fig5} {
		tab, err := fn(Default())
		if err != nil {
			t.Fatal(err)
		}
		for i := range tab.Rows {
			r := cellF(t, tab, i, "ratio")
			if r < 0.5 || r > 2.0 {
				t.Errorf("%s %s: ratio %.3f outside comparable band",
					tab.ID, cell(tab, i, "kernel"), r)
			}
		}
	}
}

func TestTable3ResourcesPlausible(t *testing.T) {
	tab, err := Table3(Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		name := cell(tab, i, "kernel")
		for _, col := range []string{"LUT(a)", "LUT(c)", "BRAM(a)", "BRAM(c)"} {
			if cellF(t, tab, i, col) <= 0 {
				t.Errorf("%s: %s should be positive", name, col)
			}
		}
		// Same backend model on both flows: resources within 2x.
		la, lc := cellF(t, tab, i, "LUT(a)"), cellF(t, tab, i, "LUT(c)")
		if la/lc > 2 || lc/la > 2 {
			t.Errorf("%s: LUT diverged: %v vs %v", name, la, lc)
		}
	}
}

func TestFig6DirectivesImprove(t *testing.T) {
	tab, err := Fig6(Default())
	if err != nil {
		t.Fatal(err)
	}
	// For each kernel, the pipe+part4 configuration must beat none in both
	// flows.
	base := map[string][2]float64{}
	best := map[string][2]float64{}
	for i := range tab.Rows {
		k := cell(tab, i, "kernel")
		d := cell(tab, i, "directives")
		a := cellF(t, tab, i, "adaptor-cycles")
		c := cellF(t, tab, i, "hlscpp-cycles")
		switch d {
		case "none":
			base[k] = [2]float64{a, c}
		case "pipe+part4":
			best[k] = [2]float64{a, c}
		}
	}
	for k, b := range base {
		o, ok := best[k]
		if !ok {
			t.Fatalf("%s: sweep incomplete", k)
		}
		if o[0] >= b[0] {
			t.Errorf("%s: adaptor flow not improved by directives: %v -> %v", k, b[0], o[0])
		}
		if o[1] >= b[1] {
			t.Errorf("%s: cxx flow not improved by directives: %v -> %v", k, b[1], o[1])
		}
	}
}

func TestFig7DetailRetention(t *testing.T) {
	tab, err := Fig7(Default())
	if err != nil {
		t.Fatal(err)
	}
	wider := 0
	for i := range tab.Rows {
		ia := cellF(t, tab, i, "idx-width(a)")
		ic := cellF(t, tab, i, "idx-width(c)")
		if ia > ic {
			wider++
		}
		if ic > ia {
			t.Errorf("%s: C++ flow should not have wider indices", cell(tab, i, "kernel"))
		}
	}
	if wider == 0 {
		t.Error("the direct-IR flow should retain 64-bit index width somewhere")
	}
}

func TestFig8ParetoNonEmpty(t *testing.T) {
	cfg := Default()
	cfg.SizeName = "MINI" // DSE runs the whole space; keep it quick
	tab, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perKernel := map[string]int{}
	for i := range tab.Rows {
		perKernel[cell(tab, i, "kernel")]++
		if cellF(t, tab, i, "latency") <= 0 {
			t.Error("non-positive latency on frontier")
		}
	}
	for _, k := range []string{"gemm", "jacobi2d", "conv2d"} {
		if perKernel[k] == 0 {
			t.Errorf("%s missing from Fig 8", k)
		}
	}
}

func TestTable4Runs(t *testing.T) {
	tab, err := Table4(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 14 {
		t.Fatalf("want >= 14 rows, got %d", len(tab.Rows))
	}
}

func TestTableString(t *testing.T) {
	tab, err := Table1(Default())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "gemm") {
		t.Errorf("rendering broken:\n%s", s)
	}
}

func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	tabs, err := All(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 9 {
		t.Fatalf("want 9 experiments, got %d", len(tabs))
	}
}

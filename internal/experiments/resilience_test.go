package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// TestEveryPassPanicIsolatedBisectedDegraded is the resilience acceptance
// sweep: for every registered unit of the adaptor pipeline, a panic
// injected into exactly that unit (for one kernel) must
//
//  1. never crash the process — the batch completes under the default
//     fail-fast policy because the fallback absorbs the failure,
//  2. be bisected to the correct unit by name, with a reproducing
//     quarantine bundle on disk,
//  3. degrade only the affected point: the victim's row is marked in the
//     table output, every other job is untouched.
func TestEveryPassPanicIsolatedBisectedDegraded(t *testing.T) {
	// Directives chosen so every optional MLIR pass is registered (gemm's
	// dependence structure refuses dataflow, which stays out of the
	// pipeline and therefore out of the registry for these directives).
	d := flow.Directives{
		Pipeline: true, II: 1, Unroll: 2, Flatten: true,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0},
	}
	units := flow.PipelineUnits("adaptor", d)
	if len(units) < 15 {
		t.Fatalf("registry suspiciously small: %d units", len(units))
	}
	kernels := []*polybench.Kernel{polybench.Get("gemm"), polybench.Get("atax")}
	cfgBase := Config{SizeName: "MINI", Target: hls.DefaultTarget()}

	for _, u := range units {
		u := u
		t.Run(u.String(), func(t *testing.T) {
			dir := t.TempDir()
			eng := engine.New(engine.Options{
				Fallback:   true,
				Quarantine: dir,
				FlowFaultHook: func(job engine.Job, flowName, stage, pass string) {
					if job.Label == "gemm adaptor" && flowName == "adaptor" &&
						stage == u.Stage && pass == u.Pass {
						panic("injected panic in " + u.String())
					}
				},
			})
			cfg := cfgBase
			cfg.Engine = eng
			var jobs []engine.Job
			for _, k := range kernels {
				js, err := pairJobs(k, cfg, d)
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, js...)
			}
			// Default batch policy is fail-fast: the batch erroring out
			// would mean the panic escaped degradation.
			rs, err := eng.RunBatch(context.Background(), jobs, engine.BatchOptions{})
			if err != nil {
				t.Fatalf("panic in %s leaked out of the fallback: %v", u, err)
			}

			victim := rs[0]
			if !victim.Degraded || victim.Res == nil || victim.Res.Flow != "cxx-fallback" {
				t.Fatalf("victim did not degrade: %+v", victim)
			}
			if victim.Failure == nil || victim.Failure.Stage != u.Stage ||
				victim.Failure.Pass != u.Pass || victim.Failure.Kind != resilience.KindPanic {
				t.Errorf("failure misattributed: %+v, want %s", victim.Failure, u)
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Err != nil || rs[i].Degraded || rs[i].BundlePath != "" {
					t.Errorf("unaffected job %s touched: %+v", rs[i].Label, rs[i])
				}
			}

			if victim.BundlePath == "" {
				t.Fatal("no quarantine bundle written")
			}
			b, err := resilience.ReadBundle(victim.BundlePath)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Reproduced {
				t.Errorf("deterministic panic did not reproduce under bisection: %s", b.Note)
			}
			if b.Failure.Stage != u.Stage || b.Failure.Pass != u.Pass {
				t.Errorf("bisection pinned %s/%s, want %s", b.Failure.Stage, b.Failure.Pass, u)
			}
			if b.InputMLIR == "" {
				t.Error("bundle missing input MLIR")
			}

			tbl := pairsTable("FigX", "resilience sweep", pairsFromResults(kernels, rs))
			if !strings.HasSuffix(tbl.Rows[0][1], "*") {
				t.Errorf("degraded gemm row not marked: %v", tbl.Rows[0])
			}
			if strings.HasSuffix(tbl.Rows[1][1], "*") {
				t.Errorf("clean atax row marked degraded: %v", tbl.Rows[1])
			}
			if !strings.Contains(tbl.Note, "degraded") {
				t.Error("table note does not explain the degraded mark")
			}
		})
	}
}

package experiments

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/incr"
	"repro/internal/raceflag"
)

// TestFig8IncrementalWarmGolden is the acceptance gate for incremental
// compilation: re-running the Fig8 MINI sweep against a warm unit store —
// the single-directive-change workflow, where every unchanged design point
// replays wholesale and an edited one would replay its prefix — must be at
// least 5x faster than the cold sweep and render a byte-identical table
// (results, phases, Pareto frontier). The warm run goes through a fresh
// engine, so nothing comes from the whole-flow result cache: every job
// re-dispatches and is rebuilt purely from unit replays.
func TestFig8IncrementalWarmGolden(t *testing.T) {
	plainTab, err := Fig8(miniCfg(engine.New(engine.Options{Workers: 1})))
	if err != nil {
		t.Fatal(err)
	}
	want := plainTab.String()

	store := incr.NewMemStore()
	newEng := func() *engine.Engine {
		return engine.New(engine.Options{Workers: 1, Incremental: true, IncrStore: store})
	}

	coldEng := newEng()
	start := time.Now()
	coldTab, err := Fig8(miniCfg(coldEng))
	coldT := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got := coldTab.String(); got != want {
		t.Errorf("cold incremental Fig8 diverges from plain\ngot:\n%s\nwant:\n%s", got, want)
	}
	coldStats := coldEng.Stats()
	if coldStats.UnitHits == 0 {
		t.Error("cold sweep should already share unit prefixes across design points")
	}

	warmEng := newEng()
	start = time.Now()
	warmTab, err := Fig8(miniCfg(warmEng))
	warmT := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got := warmTab.String(); got != want {
		t.Errorf("warm incremental Fig8 diverges from plain\ngot:\n%s\nwant:\n%s", got, want)
	}
	warmStats := warmEng.Stats()
	if warmStats.UnitMisses != 0 {
		t.Errorf("warm sweep executed %d units live", warmStats.UnitMisses)
	}
	if warmStats.FullReplays != warmStats.Jobs {
		t.Errorf("warm sweep: %d/%d jobs fully replayed", warmStats.FullReplays, warmStats.Jobs)
	}

	if raceflag.Enabled {
		t.Logf("cold %v, warm %v (timing bound skipped under race detector)", coldT, warmT)
		return
	}
	if warmT*5 > coldT {
		t.Errorf("warm Fig8 sweep %v vs cold %v: speedup %.1fx < 5x",
			warmT, coldT, float64(coldT)/float64(warmT))
	}
	t.Logf("cold %v, warm %v (%.1fx), %d unit hits cold / %d warm",
		coldT, warmT, float64(coldT)/float64(warmT), coldStats.UnitHits, warmStats.UnitHits)
}

package experiments

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hls"
)

func miniCfg(e *engine.Engine) Config {
	return Config{SizeName: "MINI", Target: hls.DefaultTarget(), Engine: e}
}

// TestFig8ParallelCachedGolden is the golden diff for the experiments
// path: Fig8 through a 4-wide cached engine must render byte-identical to
// the single-worker uncached (serial) path, on the cold and the warm run.
func TestFig8ParallelCachedGolden(t *testing.T) {
	serialTab, err := Fig8(miniCfg(engine.New(engine.Options{Workers: 1})))
	if err != nil {
		t.Fatal(err)
	}
	want := serialTab.String()

	eng := engine.New(engine.Options{Workers: 4, Cache: true})
	for run := 0; run < 2; run++ {
		tab, err := Fig8(miniCfg(eng))
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.String(); got != want {
			t.Errorf("run %d: parallel+cached Fig8 diverges from serial\ngot:\n%s\nwant:\n%s",
				run, got, want)
		}
	}
	st := eng.Stats()
	if st.CacheHits == 0 {
		t.Errorf("warm Fig8 regeneration should be served from cache: %+v", st)
	}
}

// TestTable3ParallelGolden diffs a resource table (time-independent cells)
// between worker counts.
func TestTable3ParallelGolden(t *testing.T) {
	serialTab, err := Table3(miniCfg(engine.New(engine.Options{Workers: 1})))
	if err != nil {
		t.Fatal(err)
	}
	parTab, err := Table3(miniCfg(engine.New(engine.Options{Workers: 8})))
	if err != nil {
		t.Fatal(err)
	}
	if serialTab.String() != parTab.String() {
		t.Errorf("Table3 diverges across worker counts\nserial:\n%s\nparallel:\n%s",
			serialTab, parTab)
	}
}

// TestCrossTableCacheReuse: Table3 and Table4 evaluate the same pairs, so
// generating both through one cached engine must serve the second table
// entirely from the cache.
func TestCrossTableCacheReuse(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2, Cache: true})
	cfg := miniCfg(eng)
	if _, err := Table3(cfg); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	if cold.CacheHits != 0 {
		t.Fatalf("cold table should not hit: %+v", cold)
	}
	if _, err := Table4(cfg); err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	if warm.CacheMisses != cold.CacheMisses {
		t.Errorf("Table4 should add no misses after Table3: %+v -> %+v", cold, warm)
	}
	if warm.CacheHits == 0 {
		t.Error("Table4 should be served from Table3's results")
	}
}

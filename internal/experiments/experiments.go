// Package experiments reproduces the paper's evaluation: each function
// regenerates one table or figure (see DESIGN.md for the reconstruction
// rationale — the published text provides only the abstract, so the
// experiment set follows the abstract's claims and the standard methodology
// of the MLIR-HLS paper family).
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
)

// Config selects problem size, device target, and evaluation engine.
type Config struct {
	SizeName string
	Target   hls.Target
	// Engine evaluates all flow runs. When nil, a process-wide shared
	// engine with caching enabled is used, so identical (kernel, size,
	// directives, target, flow) evaluations repeated across tables —
	// Table3/Table4 share every pair, Fig6/Fig8 share sweep points —
	// are served from the cache instead of re-synthesized.
	Engine *engine.Engine
}

// sharedEngine backs Config.Engine == nil. Cached results are read-only
// and keyed by content, so sharing across table generators is safe.
var sharedEngine = engine.New(engine.Options{Cache: true})

// engine returns the effective evaluation engine.
func (c Config) engine() *engine.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return sharedEngine
}

// Default returns the SMALL-size default-target configuration.
func Default() Config {
	return Config{SizeName: "SMALL", Target: hls.DefaultTarget()}
}

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		sb.WriteString("note: " + t.Note + "\n")
	}
	return sb.String()
}

// optimizedDirectives is the directive set used by the "optimized"
// experiments: innermost pipelining at II=1 plus cyclic partitioning.
func optimizedDirectives() flow.Directives {
	return flow.Directives{
		Pipeline:  true,
		II:        1,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0},
	}
}

// Pair holds both flows' results for one kernel.
type Pair struct {
	Kernel  string
	Adaptor *flow.Result
	Cxx     *flow.Result
}

// pairJobs emits the adaptor+cxx job pair for one kernel.
func pairJobs(k *polybench.Kernel, cfg Config, d flow.Directives) ([]engine.Job, error) {
	s, err := k.SizeOf(cfg.SizeName)
	if err != nil {
		return nil, err
	}
	build := func() *mlir.Module { return k.Build(s) }
	mk := func(kind engine.Kind, tag string) engine.Job {
		return engine.Job{
			Label:      k.Name + " " + tag,
			Kind:       kind,
			Build:      build,
			Top:        k.Name,
			Directives: d,
			Target:     cfg.Target,
			CacheScope: cfg.SizeName,
			// The kernel+size pair is the job's full input identity, so
			// every table evaluation can ship to a compile-service daemon.
			Spec: &engine.RemoteSpec{Kernel: k.Name, Size: cfg.SizeName},
		}
	}
	return []engine.Job{mk(engine.KindAdaptor, "adaptor"), mk(engine.KindCxx, "cxx")}, nil
}

// pairsFromResults zips engine results (two per kernel, in kernel order)
// back into Pairs.
func pairsFromResults(kernels []*polybench.Kernel, rs []engine.JobResult) []*Pair {
	out := make([]*Pair, len(kernels))
	for i, k := range kernels {
		out[i] = &Pair{Kernel: k.Name, Adaptor: rs[2*i].Res, Cxx: rs[2*i+1].Res}
	}
	return out
}

// RunPair runs both flows for one kernel under the given directives.
func RunPair(k *polybench.Kernel, cfg Config, d flow.Directives) (*Pair, error) {
	jobs, err := pairJobs(k, cfg, d)
	if err != nil {
		return nil, err
	}
	rs, err := cfg.engine().RunBatch(context.Background(), jobs, engine.BatchOptions{})
	if err != nil {
		return nil, err
	}
	return pairsFromResults([]*polybench.Kernel{k}, rs)[0], nil
}

// RunAllPairs fans both flows for every kernel across the engine's worker
// pool as one batch; results come back in kernel order.
func RunAllPairs(cfg Config, d flow.Directives) ([]*Pair, error) {
	kernels := polybench.All()
	var jobs []engine.Job
	for _, k := range kernels {
		js, err := pairJobs(k, cfg, d)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, js...)
	}
	rs, err := cfg.engine().RunBatch(context.Background(), jobs, engine.BatchOptions{})
	if err != nil {
		return nil, err
	}
	return pairsFromResults(kernels, rs), nil
}

// Table1 reports benchmark characteristics.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Benchmark characteristics (" + cfg.SizeName + ")",
		Header: []string{"kernel", "description", "dims", "loops", "fp-ops/iter", "arrays"},
	}
	for _, k := range polybench.All() {
		s, err := k.SizeOf(cfg.SizeName)
		if err != nil {
			return nil, err
		}
		m := k.Build(s)
		loops, fpOps := 0, 0
		mlir.Walk(m.Op, func(o *mlir.Op) bool {
			switch o.Name {
			case mlir.OpAffineFor:
				loops++
			case mlir.OpAddF, mlir.OpSubF, mlir.OpMulF, mlir.OpDivF, mlir.OpNegF:
				fpOps++
			}
			return true
		})
		var dims []string
		keys := make([]string, 0, len(s.D))
		for dk := range s.D {
			keys = append(keys, dk)
		}
		sort.Strings(keys)
		for _, dk := range keys {
			dims = append(dims, fmt.Sprintf("%s=%d", dk, s.D[dk]))
		}
		t.Rows = append(t.Rows, []string{
			k.Name, k.Description, strings.Join(dims, " "),
			fmt.Sprintf("%d", loops), fmt.Sprintf("%d", fpOps),
			fmt.Sprintf("%d", len(k.ArgTypes(s))),
		})
	}
	return t, nil
}

// Table2 reports the version gap: HLS-gate violations of the raw translated
// IR versus the fixes the adaptor applies to close them.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Table 2",
		Title: "Raw mlir-translate IR vs the adaptor (violations -> fixes)",
		Header: []string{"kernel", "violations", "kinds", "adaptor-fixes",
			"descriptor", "intrinsic", "alloc"},
		Note: "every kernel's raw IR is rejected by the HLS frontend; the adaptor makes the direct path viable",
	}
	kernels := polybench.All()
	var jobs []engine.Job
	for _, k := range kernels {
		s, err := k.SizeOf(cfg.SizeName)
		if err != nil {
			return nil, err
		}
		build := func() *mlir.Module { return k.Build(s) }
		jobs = append(jobs,
			engine.Job{Label: k.Name + " raw", Kind: engine.KindRaw, Build: build,
				Top: k.Name, Target: cfg.Target, CacheScope: cfg.SizeName},
			engine.Job{Label: k.Name + " adaptor", Kind: engine.KindAdaptor, Build: build,
				Top: k.Name, Target: cfg.Target, CacheScope: cfg.SizeName})
	}
	rs, err := cfg.engine().RunBatch(context.Background(), jobs, engine.BatchOptions{})
	if err != nil {
		return nil, err
	}
	for i, k := range kernels {
		vs := rs[2*i].Violations
		kinds := map[string]bool{}
		for _, v := range vs {
			kinds[v.Kind] = true
		}
		kindList := make([]string, 0, len(kinds))
		for kk := range kinds {
			kindList = append(kindList, kk)
		}
		sort.Strings(kindList)

		rep := rs[2*i+1].Res.Adaptor
		t.Rows = append(t.Rows, []string{
			k.Name,
			fmt.Sprintf("%d", len(vs)),
			strings.Join(kindList, ","),
			fmt.Sprintf("%d", rep.Total()),
			fmt.Sprintf("%d", rep.CountByKind("descriptor-to-array")),
			fmt.Sprintf("%d", rep.CountByKind("intrinsic-legalize")),
			fmt.Sprintf("%d", rep.CountByKind("malloc-to-alloca")),
		})
	}
	return t, nil
}

// latencyTable is shared by Fig4 (no directives) and Fig5 (optimized).
func latencyTable(cfg Config, id, title string, d flow.Directives) (*Table, error) {
	pairs, err := RunAllPairs(cfg, d)
	if err != nil {
		return nil, err
	}
	return pairsTable(id, title, pairs), nil
}

// pairsTable renders per-kernel latency pairs. An adaptor result the C++
// fallback produced after a direct-path failure is marked degraded: its
// cycles are the baseline flow's, so the ratio column says nothing about
// the direct path for that row.
func pairsTable(id, title string, pairs []*Pair) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"kernel", "adaptor-cycles", "hlscpp-cycles", "ratio"},
		Note:   "ratio = adaptor / hlscpp; comparable means ~1.0",
	}
	degraded := false
	for _, p := range pairs {
		mark := ""
		if p.Adaptor.Degraded {
			mark, degraded = "*", true
		}
		ratio := float64(p.Adaptor.Report.LatencyCycles) / float64(p.Cxx.Report.LatencyCycles)
		t.Rows = append(t.Rows, []string{
			p.Kernel,
			fmt.Sprintf("%d%s", p.Adaptor.Report.LatencyCycles, mark),
			fmt.Sprintf("%d", p.Cxx.Report.LatencyCycles),
			fmt.Sprintf("%.3f", ratio),
		})
	}
	if degraded {
		t.Note += "; * = degraded (direct path failed, C++ fallback result)"
	}
	return t
}

// Fig4 compares flow latencies without directives.
func Fig4(cfg Config) (*Table, error) {
	return latencyTable(cfg, "Fig 4",
		"Latency: adaptor flow vs HLS-C++ flow (no directives, "+cfg.SizeName+")",
		flow.Directives{})
}

// Fig5 compares flow latencies under the optimized directive set.
func Fig5(cfg Config) (*Table, error) {
	return latencyTable(cfg, "Fig 5",
		"Latency: adaptor flow vs HLS-C++ flow (pipeline II=1 + cyclic partition, "+cfg.SizeName+")",
		optimizedDirectives())
}

// Table3 compares resource utilization under the optimized directive set.
func Table3(cfg Config) (*Table, error) {
	pairs, err := RunAllPairs(cfg, optimizedDirectives())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 3",
		Title: "Resource utilization, optimized (" + cfg.SizeName + ")",
		Header: []string{"kernel", "LUT(a)", "LUT(c)", "FF(a)", "FF(c)",
			"DSP(a)", "DSP(c)", "BRAM(a)", "BRAM(c)"},
		Note: "(a) = adaptor flow, (c) = HLS-C++ flow",
	}
	for _, p := range pairs {
		a, c := p.Adaptor.Report, p.Cxx.Report
		t.Rows = append(t.Rows, []string{
			p.Kernel,
			fmt.Sprintf("%d", a.LUT), fmt.Sprintf("%d", c.LUT),
			fmt.Sprintf("%d", a.FF), fmt.Sprintf("%d", c.FF),
			fmt.Sprintf("%d", a.DSP), fmt.Sprintf("%d", c.DSP),
			fmt.Sprintf("%d", a.BRAM), fmt.Sprintf("%d", c.BRAM),
		})
	}
	return t, nil
}

// Fig6 sweeps directives on three kernels to show both flows respond to
// optimization the same way (directive fidelity through the adaptor).
func Fig6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig 6",
		Title:  "Directive sweep (" + cfg.SizeName + "): latency under unroll/pipeline",
		Header: []string{"kernel", "directives", "adaptor-cycles", "hlscpp-cycles", "ratio"},
	}
	sweeps := []struct {
		name string
		d    flow.Directives
	}{
		{"none", flow.Directives{}},
		{"pipe", flow.Directives{Pipeline: true, II: 1}},
		{"pipe+part2", flow.Directives{Pipeline: true, II: 1,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0}}},
		{"pipe+part4", flow.Directives{Pipeline: true, II: 1,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 4, Dim: 0}}},
		{"unroll2", flow.Directives{Unroll: 2}},
		{"unroll4", flow.Directives{Unroll: 4}},
		{"unroll4+part4", flow.Directives{Unroll: 4,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 4, Dim: 0}}},
	}
	names := []string{"gemm", "jacobi2d", "conv2d"}
	var jobs []engine.Job
	for _, name := range names {
		k := polybench.Get(name)
		for _, sw := range sweeps {
			js, err := pairJobs(k, cfg, sw.d)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, js...)
		}
	}
	rs, err := cfg.engine().RunBatch(context.Background(), jobs, engine.BatchOptions{})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, name := range names {
		for _, sw := range sweeps {
			a, c := rs[i].Res.Report, rs[i+1].Res.Report
			i += 2
			ratio := float64(a.LatencyCycles) / float64(c.LatencyCycles)
			t.Rows = append(t.Rows, []string{
				name, sw.name,
				fmt.Sprintf("%d", a.LatencyCycles),
				fmt.Sprintf("%d", c.LatencyCycles),
				fmt.Sprintf("%.3f", ratio),
			})
		}
	}
	return t, nil
}

// Table4 reports compile-time breakdown per flow.
func Table4(cfg Config) (*Table, error) {
	pairs, err := RunAllPairs(cfg, optimizedDirectives())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 4",
		Title: "Flow compile time (" + cfg.SizeName + ", microseconds)",
		Header: []string{"kernel", "adaptor-total", "a:translate", "a:adaptor",
			"cxx-total", "c:emit", "c:frontend"},
		Note: "wall time of this reimplementation; relative phase weights are the signal",
	}
	us := func(d int64) string { return fmt.Sprintf("%d", d/1000) }
	for _, p := range pairs {
		t.Rows = append(t.Rows, []string{
			p.Kernel,
			us(p.Adaptor.Total.Nanoseconds()),
			us(p.Adaptor.Phases["translate"].Nanoseconds()),
			us(p.Adaptor.Phases["adaptor"].Nanoseconds()),
			us(p.Cxx.Total.Nanoseconds()),
			us(p.Cxx.Phases["emit-hlscpp"].Nanoseconds()),
			us(p.Cxx.Phases["c-frontend"].Nanoseconds()),
		})
	}
	return t, nil
}

// Fig7 measures expression-detail retention: how much IR each flow's final
// module carries relative to the information in the source (fewer
// rematerialized ops and casts = more detail preserved).
func Fig7(cfg Config) (*Table, error) {
	pairs, err := RunAllPairs(cfg, flow.Directives{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Fig 7",
		Title: "Expression detail through each flow (" + cfg.SizeName + ")",
		Header: []string{"kernel", "instrs(a)", "instrs(c)", "casts(a)", "casts(c)",
			"idx-width(a)", "idx-width(c)"},
		Note: "the C++ round trip narrows indices to 32-bit and reintroduces casts the direct IR path never had",
	}
	for _, p := range pairs {
		ia := countInstrs(p.Adaptor.LLVM, p.Kernel)
		ic := countInstrs(p.Cxx.LLVM, p.Kernel)
		t.Rows = append(t.Rows, []string{
			p.Kernel,
			fmt.Sprintf("%d", ia.total), fmt.Sprintf("%d", ic.total),
			fmt.Sprintf("%d", ia.casts), fmt.Sprintf("%d", ic.casts),
			fmt.Sprintf("%d", ia.idxBits), fmt.Sprintf("%d", ic.idxBits),
		})
	}
	return t, nil
}

type instrStats struct {
	total   int
	casts   int
	idxBits int
}

func countInstrs(m *llvm.Module, fn string) instrStats {
	f := m.FindFunc(fn)
	st := instrStats{idxBits: 64}
	if f == nil {
		return st
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			st.total++
			switch in.Op {
			case llvm.OpSExt, llvm.OpZExt, llvm.OpTrunc, llvm.OpFPExt, llvm.OpFPTrunc:
				st.casts++
			case llvm.OpPhi:
				if in.Ty.IsInt() && in.Ty.Bits < st.idxBits {
					st.idxBits = in.Ty.Bits
				}
			}
		}
	}
	return st
}

// Fig8 (extension beyond the paper) runs the automated design-space
// explorer over three kernels and reports each Pareto frontier — the
// productivity argument for a direct IR path: no C++ round trip sits inside
// the DSE loop.
func Fig8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig 8",
		Title:  "DSE Pareto frontiers via the adaptor flow (" + cfg.SizeName + ", extension)",
		Header: []string{"kernel", "config", "latency", "area(equiv-LUT)"},
		Note:   "non-dominated latency/area points from the full directive space",
	}
	for _, name := range []string{"gemm", "jacobi2d", "conv2d"} {
		k := polybench.Get(name)
		s, err := k.SizeOf(cfg.SizeName)
		if err != nil {
			return nil, err
		}
		// Precheck prunes pipeline points whose requested II sits below the
		// kernel's dependence-implied floor; the frontier is provably
		// unchanged, so the golden table is too.
		res, err := dse.ExploreWith(func() *mlir.Module { return k.Build(s) }, k.Name, cfg.Target,
			dse.Options{Engine: cfg.engine(), CacheScope: cfg.SizeName, FailFast: true, Precheck: true,
				RemoteSpec: &engine.RemoteSpec{Kernel: k.Name, Size: cfg.SizeName}})
		if err != nil {
			return nil, err
		}
		for _, p := range res.Pareto {
			t.Rows = append(t.Rows, []string{
				name, p.Label,
				fmt.Sprintf("%d", p.Latency()),
				fmt.Sprintf("%.0f", p.Area),
			})
		}
	}
	return t, nil
}

// All regenerates every experiment.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, fn := range []func(Config) (*Table, error){
		Table1, Table2, Fig4, Fig5, Table3, Fig6, Table4, Fig7, Fig8,
	} {
		t, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

package cfront

// File is a parsed translation unit.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is a void function definition.
type FuncDecl struct {
	Name    string
	Params  []*ParamDecl
	Body    []Stmt
	Pragmas []Pragma // function-level pragmas (interface, array_partition)
}

// ParamDecl is one parameter: a scalar or a constant-dimension array.
type ParamDecl struct {
	Name  string
	CType string  // "float", "double", "int"
	Dims  []int64 // empty for scalars
}

// Pragma is a parsed #pragma HLS directive.
type Pragma struct {
	Kind string            // "pipeline", "unroll", "array_partition", "interface"
	Var  string            // variable/port operand, if any
	Opts map[string]string // II, factor, dim, kind ("cyclic"...), mode
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// DeclStmt declares a local scalar (with optional init) or array.
type DeclStmt struct {
	Name  string
	CType string
	Dims  []int64
	Init  Expr // nil for arrays / uninitialized
}

// AssignStmt assigns to a variable or array element.
type AssignStmt struct {
	Target *IndexExpr // Idxs empty for plain variables
	Op     string     // "=", "+=", "-=", "*=", "/="
	RHS    Expr
}

// ForStmt is a canonical counted loop: for (int IV = Init; IV < Bound; IV += Step).
type ForStmt struct {
	IV      string
	Init    Expr
	Bound   Expr
	Cmp     string // "<" or "<="
	Step    int64
	Pragmas []Pragma
	Body    []Stmt
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ReturnStmt returns from a void function.
type ReturnStmt struct{}

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct{ X Expr }

func (*DeclStmt) isStmt()   {}
func (*AssignStmt) isStmt() {}
func (*ForStmt) isStmt()    {}
func (*IfStmt) isStmt()     {}
func (*ReturnStmt) isStmt() {}
func (*ExprStmt) isStmt()   {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating literal ("f" suffix selects float).
type FloatLit struct {
	V     float64
	IsF32 bool
}

// IndexExpr is a variable reference with zero or more subscripts.
type IndexExpr struct {
	Base string
	Idxs []Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies unary - or !.
type UnaryExpr struct {
	Op string
	X  Expr
}

// CondExpr is c ? t : f.
type CondExpr struct{ C, T, F Expr }

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
}

// CastExpr is an explicit C cast.
type CastExpr struct {
	CType string
	X     Expr
}

func (*IntLit) isExpr()     {}
func (*FloatLit) isExpr()   {}
func (*IndexExpr) isExpr()  {}
func (*BinaryExpr) isExpr() {}
func (*UnaryExpr) isExpr()  {}
func (*CondExpr) isExpr()   {}
func (*CallExpr) isExpr()   {}
func (*CastExpr) isExpr()   {}

package cfront

import (
	"context"
	"testing"

	"repro/internal/llvm/interp"
)

// runVoid compiles src and runs fn on the given buffers.
func runVoid(t *testing.T, src, fn string, mems ...*interp.Mem) {
	t.Helper()
	m, err := Compile(src, Options{Top: fn})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	args := make([]interp.Arg, len(mems))
	for i := range mems {
		args[i] = interp.PtrArg(mems[i], 0)
	}
	mc := interp.NewMachine(m)
	if _, _, err := mc.Run(context.Background(), fn, args...); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPlusPlusIncrement(t *testing.T) {
	src := `
void f(int out[4]) {
  for (int i = 0; i < 4; i++) {
    out[i] = i;
  }
}
`
	out := interp.NewMem(16)
	runVoid(t, src, "f", out)
	for i, v := range out.Int32Slice() {
		if v != int32(i) {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestLessEqualLoop(t *testing.T) {
	src := `
void f(int out[5]) {
  for (int i = 0; i <= 4; i += 1) {
    out[i] = 1;
  }
}
`
	out := interp.NewMem(20)
	runVoid(t, src, "f", out)
	for i, v := range out.Int32Slice() {
		if v != 1 {
			t.Errorf("out[%d] = %d (trip count wrong for <=)", i, v)
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	src := `
void f(int in[6], int out[6]) {
  for (int i = 0; i < 6; i += 1) {
    int v = in[i];
    int both = v > 1 && v < 4;
    int either = v < 1 || v > 4;
    int neither = !(v > 0);
    out[i] = both * 100 + either * 10 + neither;
  }
}
`
	in := interp.NewMem(24)
	out := interp.NewMem(24)
	vals := []int32{0, 1, 2, 4, 5, 3}
	for i, v := range vals {
		in.SetInt32(i, v)
	}
	runVoid(t, src, "f", in, out)
	want := []int32{11, 0, 100, 0, 10, 100}
	for i, w := range want {
		if got := out.Int32Slice()[i]; got != w {
			t.Errorf("out[%d] = %d, want %d (v=%d)", i, got, w, vals[i])
		}
	}
}

func TestUnaryMinusAndCasts(t *testing.T) {
	src := `
void f(float out[4]) {
  int i = 3;
  out[0] = -1.5f;
  out[1] = (float)i;
  out[2] = (float)(i / 2);
  out[3] = -(float)i;
}
`
	out := interp.NewMem(16)
	runVoid(t, src, "f", out)
	want := []float32{-1.5, 3, 1, -3}
	for i, w := range want {
		if got := out.Float32Slice()[i]; got != w {
			t.Errorf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestNestedIfElseChains(t *testing.T) {
	src := `
void f(int in[5], int out[5]) {
  for (int i = 0; i < 5; i += 1) {
    int v = in[i];
    if (v < 2) {
      if (v < 1) {
        out[i] = 0;
      } else {
        out[i] = 1;
      }
    } else {
      out[i] = 2;
    }
  }
}
`
	in := interp.NewMem(20)
	out := interp.NewMem(20)
	for i, v := range []int32{0, 1, 2, 3, 0} {
		in.SetInt32(i, v)
	}
	runVoid(t, src, "f", in, out)
	want := []int32{0, 1, 2, 2, 0}
	for i, w := range want {
		if got := out.Int32Slice()[i]; got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestEarlyReturn(t *testing.T) {
	src := `
void f(int out[2]) {
  out[0] = 1;
  return;
}
`
	out := interp.NewMem(8)
	runVoid(t, src, "f", out)
	got := out.Int32Slice()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("out = %v", got)
	}
}

func TestTwoFunctions(t *testing.T) {
	src := `
void first(int a[2]) {
  a[0] = 10;
}

void second(int a[2]) {
  a[1] = 20;
}
`
	m, err := Compile(src, Options{Top: "second"})
	if err != nil {
		t.Fatal(err)
	}
	if m.FindFunc("first") == nil || m.FindFunc("second") == nil {
		t.Fatal("both functions should compile")
	}
	if m.FindFunc("second").Attrs["hls.top"] != "1" {
		t.Error("top selection wrong")
	}
	if _, ok := m.FindFunc("first").Attrs["hls.top"]; ok {
		t.Error("non-top function marked top")
	}
}

func TestCommentsAndUnknownPragmas(t *testing.T) {
	src := `
// header comment
/* block
   comment */
#pragma once
void f(int out[1]) {
#pragma HLS unknown_directive foo=bar
  out[0] = 42; // trailing
}
`
	out := interp.NewMem(4)
	runVoid(t, src, "f", out)
	if out.Int32Slice()[0] != 42 {
		t.Error("comments/pragmas broke parsing")
	}
}

func TestVariableShadowing(t *testing.T) {
	src := `
void f(int out[3]) {
  int i = 99;
  out[0] = i;
  for (int i = 0; i < 1; i += 1) {
    out[1] = i;
  }
  out[2] = i;
}
`
	out := interp.NewMem(12)
	runVoid(t, src, "f", out)
	got := out.Int32Slice()
	if got[0] != 99 || got[1] != 0 || got[2] != 99 {
		t.Errorf("shadowing broken: %v", got)
	}
}

func TestMixedPrecisionPromotion(t *testing.T) {
	src := `
void f(float out[2], double d[1]) {
  float x = 0.5f;
  d[0] = x + 0.25;
  out[0] = (float)(d[0] * 2.0);
  out[1] = x * 2.0f;
}
`
	out := interp.NewMem(8)
	d := interp.NewMem(8)
	runVoid(t, src, "f", out, d)
	if d.Float64Slice()[0] != 0.75 {
		t.Errorf("double promotion wrong: %g", d.Float64Slice()[0])
	}
	if out.Float32Slice()[0] != 1.5 || out.Float32Slice()[1] != 1 {
		t.Errorf("float results: %v", out.Float32Slice())
	}
}

// Package cfront is a C-subset frontend standing in for the Clang inside
// Vitis HLS: it parses the HLS C++ emitted by cgen (and hand-written kernels
// in the same subset), type-checks it, lowers it to LLVM IR through allocas,
// and recovers SSA with mem2reg — reproducing the re-canonicalization the
// baseline HLS-C++ flow undergoes (int loop counters, sign extensions,
// rebuilt address expressions).
package cfront

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct
	tPragma // whole "#pragma ..." line, text holds the content after '#'
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c == '#':
			start := i
			for i < n && src[i] != '\n' {
				i++
			}
			toks = append(toks, token{kind: tPragma, text: strings.TrimSpace(src[start:i]), line: line})
		case isAlpha(c):
			start := i
			for i < n && (isAlpha(src[i]) || isDig(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tIdent, text: src[start:i], line: line})
		case isDig(c) || (c == '.' && i+1 < n && isDig(src[i+1])):
			start := i
			isF := false
			for i < n {
				ch := src[i]
				if isDig(ch) {
					i++
					continue
				}
				if ch == '.' && !isF {
					isF = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && i+1 < n &&
					(isDig(src[i+1]) || ((src[i+1] == '+' || src[i+1] == '-') && i+2 < n && isDig(src[i+2]))) {
					isF = true
					i += 2
					continue
				}
				if ch == 'f' || ch == 'F' {
					isF = true
					i++
					break
				}
				break
			}
			k := tInt
			if isF {
				k = tFloat
			}
			toks = append(toks, token{kind: k, text: src[start:i], line: line})
		default:
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "&&", "||":
				toks = append(toks, token{kind: tPunct, text: two, line: line})
				i += 2
			default:
				switch c {
				case '(', ')', '{', '}', '[', ']', ';', ',', '=', '<', '>', '+',
					'-', '*', '/', '%', '?', ':', '!', '&', '|':
					toks = append(toks, token{kind: tPunct, text: string(c), line: line})
					i++
				default:
					return nil, fmt.Errorf("cfront: line %d: unexpected character %q", line, string(c))
				}
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDig(c byte) bool { return c >= '0' && c <= '9' }

package cfront

import (
	"fmt"
	"strconv"

	"repro/internal/llvm"
	lpasses "repro/internal/llvm/passes"
)

// Options configures compilation.
type Options struct {
	// Top marks the named function as the HLS top (attribute hls.top).
	Top string
	// SkipCleanup leaves the raw alloca-form IR (for tests).
	SkipCleanup bool
}

// Compile parses and lowers C-subset source into an HLS-flavored LLVM
// module, running the standard post-frontend cleanup (mem2reg etc.).
func Compile(src string, opts Options) (*llvm.Module, error) {
	file, err := ParseC(src)
	if err != nil {
		return nil, err
	}
	m := llvm.NewModule("cfront")
	m.Flavor = llvm.FlavorHLS
	for _, fd := range file.Funcs {
		g := &codegen{mod: m}
		f, err := g.genFunc(fd)
		if err != nil {
			return nil, fmt.Errorf("cfront: @%s: %w", fd.Name, err)
		}
		if fd.Name == opts.Top {
			f.SetAttr("hls.top", "1")
		}
		m.AddFunc(f)
	}
	if !opts.SkipCleanup {
		for _, f := range m.Funcs {
			lpasses.Cleanup(f)
		}
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("cfront: generated invalid IR: %w", err)
	}
	return m, nil
}

// cvar is a named C variable: either an addressable slot (alloca/param
// array) or a parameter value copied to a slot.
type cvar struct {
	ptr   llvm.Value // pointer to storage (alloca or array param)
	ctype string
	dims  []int64
}

type codegen struct {
	mod  *llvm.Module
	f    *llvm.Function
	b    *llvm.Builder
	vars map[string]*cvar
	blk  int
}

func scalarType(ct string) *llvm.Type {
	switch ct {
	case "float":
		return llvm.FloatT()
	case "double":
		return llvm.DoubleT()
	default:
		return llvm.I32()
	}
}

func arrayType(ct string, dims []int64) *llvm.Type {
	t := scalarType(ct)
	for i := len(dims) - 1; i >= 0; i-- {
		t = llvm.ArrayOf(dims[i], t)
	}
	return t
}

func (g *codegen) newBlock(prefix string) *llvm.Block {
	g.blk++
	return g.f.AddBlock(fmt.Sprintf("%s%d", prefix, g.blk))
}

func (g *codegen) genFunc(fd *FuncDecl) (*llvm.Function, error) {
	f := llvm.NewFunction(fd.Name, llvm.Void())
	g.f = f
	g.vars = map[string]*cvar{}
	for _, pd := range fd.Params {
		ty := scalarType(pd.CType)
		if len(pd.Dims) > 0 {
			ty = llvm.Ptr(arrayType(pd.CType, pd.Dims))
		}
		f.Params = append(f.Params, &llvm.Param{Name: pd.Name, Ty: ty})
	}
	entry := f.AddBlock("entry")
	g.b = llvm.NewBuilder(f)
	g.b.SetBlock(entry)

	// Parameters: arrays are addressable directly; scalars get a slot (as
	// Clang emits) that mem2reg later promotes.
	for i, pd := range fd.Params {
		if len(pd.Dims) > 0 {
			g.vars[pd.Name] = &cvar{ptr: f.Params[i], ctype: pd.CType, dims: pd.Dims}
			continue
		}
		slot := g.b.Alloca(scalarType(pd.CType))
		slot.Name = pd.Name + "_addr"
		g.b.Store(f.Params[i], slot)
		g.vars[pd.Name] = &cvar{ptr: slot, ctype: pd.CType}
	}

	// Apply function-level pragmas.
	argIdx := map[string]int{}
	for i, pd := range fd.Params {
		argIdx[pd.Name] = i
	}
	for _, pr := range fd.Pragmas {
		switch pr.Kind {
		case "dataflow":
			f.SetAttr("hls.dataflow", "1")
		case "array_partition":
			if i, ok := argIdx[pr.Var]; ok {
				kind := pr.Opts["kind"]
				factor := pr.Opts["factor"]
				if factor == "" {
					factor = "0"
				}
				dim := 0
				if d, err := strconv.Atoi(pr.Opts["dim"]); err == nil && d > 0 {
					dim = d - 1 // pragma dims are 1-based
				}
				f.SetAttr(fmt.Sprintf("hls.array_partition.arg%d", i),
					fmt.Sprintf("%s,%s,%d", kind, factor, dim))
			}
		case "interface":
			if i, ok := argIdx[pr.Var]; ok {
				mode := pr.Opts["mode"]
				if mode == "" {
					mode = "ap_memory"
				}
				f.Params[i].Attrs = append(f.Params[i].Attrs, `"hls.interface=`+mode+`"`)
			}
		}
	}

	if err := g.genStmts(fd.Body); err != nil {
		return nil, err
	}
	if t := g.b.Block().Terminator(); t == nil {
		g.b.Ret(nil)
	}
	return f, nil
}

func (g *codegen) genStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *DeclStmt:
		if len(st.Dims) > 0 {
			arr := g.b.Alloca(arrayType(st.CType, st.Dims))
			arr.Name = st.Name + "_addr"
			g.vars[st.Name] = &cvar{ptr: arr, ctype: st.CType, dims: st.Dims}
			return nil
		}
		slot := g.b.Alloca(scalarType(st.CType))
		slot.Name = st.Name + "_addr"
		g.vars[st.Name] = &cvar{ptr: slot, ctype: st.CType}
		if st.Init != nil {
			v, vt, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			g.b.Store(g.convert(v, vt, st.CType), slot)
		}
		return nil

	case *AssignStmt:
		return g.genAssign(st)

	case *ForStmt:
		return g.genFor(st)

	case *IfStmt:
		return g.genIf(st)

	case *ReturnStmt:
		g.b.Ret(nil)
		// Subsequent statements in this block are unreachable; start a new
		// block so codegen stays well-formed.
		g.b.SetBlock(g.newBlock("dead"))
		return nil

	case *ExprStmt:
		_, _, err := g.genExpr(st.X)
		return err
	}
	return fmt.Errorf("unsupported statement %T", s)
}

// elemPtr computes the address of target (variable or array element) and
// returns the element's C type.
func (g *codegen) elemPtr(target *IndexExpr) (llvm.Value, string, error) {
	v, ok := g.vars[target.Base]
	if !ok {
		return nil, "", fmt.Errorf("undefined variable %q", target.Base)
	}
	if len(target.Idxs) == 0 {
		if len(v.dims) > 0 {
			return nil, "", fmt.Errorf("array %q used without subscripts", target.Base)
		}
		return v.ptr, v.ctype, nil
	}
	if len(target.Idxs) != len(v.dims) {
		return nil, "", fmt.Errorf("%q expects %d subscripts, got %d",
			target.Base, len(v.dims), len(target.Idxs))
	}
	idxs := []llvm.Value{llvm.CI(llvm.I64(), 0)}
	for _, ie := range target.Idxs {
		iv, it, err := g.genExpr(ie)
		if err != nil {
			return nil, "", err
		}
		iv = g.convert(iv, it, "int")
		// C subscripts sign-extend to the pointer width.
		idxs = append(idxs, g.b.Cast(llvm.OpSExt, iv, llvm.I64()))
	}
	arrTy := arrayType(v.ctype, v.dims)
	gep := g.b.GEP(arrTy, v.ptr, idxs...)
	return gep, v.ctype, nil
}

func (g *codegen) genAssign(st *AssignStmt) error {
	ptr, ct, err := g.elemPtr(st.Target)
	if err != nil {
		return err
	}
	rhs, rt, err := g.genExpr(st.RHS)
	if err != nil {
		return err
	}
	rhs = g.convert(rhs, rt, ct)
	if st.Op != "=" {
		old := g.b.Load(scalarType(ct), ptr)
		var opc llvm.Opcode
		isFP := ct == "float" || ct == "double"
		switch st.Op {
		case "+=":
			opc = llvm.OpAdd
			if isFP {
				opc = llvm.OpFAdd
			}
		case "-=":
			opc = llvm.OpSub
			if isFP {
				opc = llvm.OpFSub
			}
		case "*=":
			opc = llvm.OpMul
			if isFP {
				opc = llvm.OpFMul
			}
		case "/=":
			opc = llvm.OpSDiv
			if isFP {
				opc = llvm.OpFDiv
			}
		}
		rhs = g.b.Binary(opc, old, rhs)
	}
	g.b.Store(rhs, ptr)
	return nil
}

func (g *codegen) genFor(st *ForStmt) error {
	// Counter slot.
	slot := g.b.Alloca(llvm.I32())
	slot.Name = st.IV + "_addr"
	outerVar, shadowed := g.vars[st.IV]
	g.vars[st.IV] = &cvar{ptr: slot, ctype: "int"}

	init, it, err := g.genExpr(st.Init)
	if err != nil {
		return err
	}
	g.b.Store(g.convert(init, it, "int"), slot)

	header := g.newBlock("for.cond")
	body := g.newBlock("for.body")
	latch := g.newBlock("for.inc")
	exit := g.newBlock("for.end")
	g.b.Br(header)

	g.b.SetBlock(header)
	iv := g.b.Load(llvm.I32(), slot)
	bound, bt, err := g.genExpr(st.Bound)
	if err != nil {
		return err
	}
	bound = g.convert(bound, bt, "int")
	pred := "slt"
	if st.Cmp == "<=" {
		pred = "sle"
	}
	cond := g.b.ICmp(pred, iv, bound)
	g.b.CondBr(cond, body, exit)

	g.b.SetBlock(body)
	if err := g.genStmts(st.Body); err != nil {
		return err
	}
	if g.b.Block().Terminator() == nil {
		g.b.Br(latch)
	}

	g.b.SetBlock(latch)
	iv2 := g.b.Load(llvm.I32(), slot)
	next := g.b.Add(iv2, llvm.CI(llvm.I32(), st.Step))
	g.b.Store(next, slot)
	back := g.b.Br(header)
	// Loop pragmas become latch metadata.
	for _, pr := range st.Pragmas {
		if back.Loop == nil {
			back.Loop = &llvm.LoopMD{}
		}
		switch pr.Kind {
		case "pipeline":
			back.Loop.Pipeline = true
			if ii, err := strconv.Atoi(pr.Opts["ii"]); err == nil {
				back.Loop.II = ii
			}
		case "unroll":
			if fct, err := strconv.Atoi(pr.Opts["factor"]); err == nil {
				back.Loop.Unroll = fct
			} else {
				back.Loop.Unroll = -1 // full
			}
		case "loop_flatten":
			back.Loop.Flatten = true
		}
	}

	g.b.SetBlock(exit)
	if shadowed {
		g.vars[st.IV] = outerVar
	} else {
		delete(g.vars, st.IV)
	}
	return nil
}

func (g *codegen) genIf(st *IfStmt) error {
	cond, ct, err := g.genExpr(st.Cond)
	if err != nil {
		return err
	}
	cond = g.toBool(cond, ct)
	then := g.newBlock("if.then")
	join := g.newBlock("if.end")
	elseBlk := join
	if st.Else != nil {
		elseBlk = g.newBlock("if.else")
	}
	g.b.CondBr(cond, then, elseBlk)
	g.b.SetBlock(then)
	if err := g.genStmts(st.Then); err != nil {
		return err
	}
	if g.b.Block().Terminator() == nil {
		g.b.Br(join)
	}
	if st.Else != nil {
		g.b.SetBlock(elseBlk)
		if err := g.genStmts(st.Else); err != nil {
			return err
		}
		if g.b.Block().Terminator() == nil {
			g.b.Br(join)
		}
	}
	g.b.SetBlock(join)
	return nil
}

// typeRank orders C arithmetic types for promotion.
func typeRank(ct string) int {
	switch ct {
	case "double":
		return 3
	case "float":
		return 2
	case "bool":
		return 0
	default:
		return 1
	}
}

// convert coerces a value between C types.
func (g *codegen) convert(v llvm.Value, from, to string) llvm.Value {
	if from == to {
		return v
	}
	switch {
	case from == "bool" && to == "int":
		return g.b.Cast(llvm.OpZExt, v, llvm.I32())
	case from == "bool":
		return g.convert(g.convert(v, "bool", "int"), "int", to)
	case from == "int" && (to == "float" || to == "double"):
		return g.b.Cast(llvm.OpSIToFP, v, scalarType(to))
	case (from == "float" || from == "double") && to == "int":
		return g.b.Cast(llvm.OpFPToSI, v, llvm.I32())
	case from == "float" && to == "double":
		return g.b.Cast(llvm.OpFPExt, v, llvm.DoubleT())
	case from == "double" && to == "float":
		return g.b.Cast(llvm.OpFPTrunc, v, llvm.FloatT())
	}
	return v
}

// toBool converts an arithmetic value to i1.
func (g *codegen) toBool(v llvm.Value, ct string) llvm.Value {
	if ct == "bool" {
		return v
	}
	if ct == "float" || ct == "double" {
		return g.b.FCmp("one", v, llvm.CF(scalarType(ct), 0))
	}
	return g.b.ICmp("ne", v, llvm.CI(scalarType(ct), 0))
}

// genExpr returns (value, C type). Comparisons return "bool" (i1).
func (g *codegen) genExpr(e Expr) (llvm.Value, string, error) {
	switch x := e.(type) {
	case *IntLit:
		return llvm.CI(llvm.I32(), x.V), "int", nil
	case *FloatLit:
		if x.IsF32 {
			return llvm.CF(llvm.FloatT(), x.V), "float", nil
		}
		return llvm.CF(llvm.DoubleT(), x.V), "double", nil
	case *IndexExpr:
		ptr, ct, err := g.elemPtr(x)
		if err != nil {
			return nil, "", err
		}
		ld := g.b.Load(scalarType(ct), ptr)
		return ld, ct, nil
	case *UnaryExpr:
		v, ct, err := g.genExpr(x.X)
		if err != nil {
			return nil, "", err
		}
		if x.Op == "!" {
			b := g.toBool(v, ct)
			one := llvm.CI(llvm.I1(), 1)
			return g.b.Binary(llvm.OpXor, b, one), "bool", nil
		}
		if ct == "float" || ct == "double" {
			return g.b.FNeg(v), ct, nil
		}
		return g.b.Sub(llvm.CI(llvm.I32(), 0), v), ct, nil
	case *CastExpr:
		v, ct, err := g.genExpr(x.X)
		if err != nil {
			return nil, "", err
		}
		return g.convert(v, ct, x.CType), x.CType, nil
	case *CondExpr:
		c, ct, err := g.genExpr(x.C)
		if err != nil {
			return nil, "", err
		}
		c = g.toBool(c, ct)
		tv, tt, err := g.genExpr(x.T)
		if err != nil {
			return nil, "", err
		}
		fv, ft, err := g.genExpr(x.F)
		if err != nil {
			return nil, "", err
		}
		common := tt
		if typeRank(ft) > typeRank(tt) {
			common = ft
		}
		tv = g.convert(tv, tt, common)
		fv = g.convert(fv, ft, common)
		return g.b.Select(c, tv, fv), common, nil
	case *CallExpr:
		var args []llvm.Value
		for _, a := range x.Args {
			v, ct, err := g.genExpr(a)
			if err != nil {
				return nil, "", err
			}
			// Math libm calls take doubles unless the f-suffixed variant.
			switch x.Name {
			case "sqrtf", "expf", "fabsf":
				v = g.convert(v, ct, "float")
			case "sqrt", "exp", "fabs":
				v = g.convert(v, ct, "double")
			}
			args = append(args, v)
		}
		ret := llvm.DoubleT()
		ctype := "double"
		switch x.Name {
		case "sqrtf", "expf", "fabsf":
			ret = llvm.FloatT()
			ctype = "float"
		}
		call := g.b.Call(x.Name, ret, args...)
		return call, ctype, nil
	case *BinaryExpr:
		return g.genBinary(x)
	}
	return nil, "", fmt.Errorf("unsupported expression %T", e)
}

func (g *codegen) genBinary(x *BinaryExpr) (llvm.Value, string, error) {
	l, lt, err := g.genExpr(x.L)
	if err != nil {
		return nil, "", err
	}
	r, rt, err := g.genExpr(x.R)
	if err != nil {
		return nil, "", err
	}
	switch x.Op {
	case "&&", "||":
		lb := g.toBool(l, lt)
		rb := g.toBool(r, rt)
		opc := llvm.OpAnd
		if x.Op == "||" {
			opc = llvm.OpOr
		}
		return g.b.Binary(opc, lb, rb), "bool", nil
	}
	common := lt
	if typeRank(rt) > typeRank(lt) {
		common = rt
	}
	if common == "bool" {
		common = "int"
	}
	l = g.convert(l, lt, common)
	r = g.convert(r, rt, common)
	isFP := common == "float" || common == "double"
	switch x.Op {
	case "+", "-", "*", "/", "%":
		var opc llvm.Opcode
		switch x.Op {
		case "+":
			opc = llvm.OpAdd
			if isFP {
				opc = llvm.OpFAdd
			}
		case "-":
			opc = llvm.OpSub
			if isFP {
				opc = llvm.OpFSub
			}
		case "*":
			opc = llvm.OpMul
			if isFP {
				opc = llvm.OpFMul
			}
		case "/":
			opc = llvm.OpSDiv
			if isFP {
				opc = llvm.OpFDiv
			}
		case "%":
			if isFP {
				return nil, "", fmt.Errorf("%% on floating operands")
			}
			opc = llvm.OpSRem
		}
		return g.b.Binary(opc, l, r), common, nil
	case "<", "<=", ">", ">=", "==", "!=":
		if isFP {
			pred := map[string]string{"<": "olt", "<=": "ole", ">": "ogt",
				">=": "oge", "==": "oeq", "!=": "one"}[x.Op]
			return g.b.FCmp(pred, l, r), "bool", nil
		}
		pred := map[string]string{"<": "slt", "<=": "sle", ">": "sgt",
			">=": "sge", "==": "eq", "!=": "ne"}[x.Op]
		return g.b.ICmp(pred, l, r), "bool", nil
	}
	return nil, "", fmt.Errorf("unsupported operator %q", x.Op)
}

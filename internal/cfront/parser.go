package cfront

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseC parses C-subset source text.
func ParseC(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	return p.parseFile()
}

type cparser struct {
	toks []token
	pos  int
}

func (p *cparser) cur() token { return p.toks[p.pos] }

func (p *cparser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *cparser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("cfront: line %d (near %q): %s", t.line, t.text,
		fmt.Sprintf(format, args...))
}

func (p *cparser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *cparser) isIdent(s string) bool {
	return p.cur().kind == tIdent && p.cur().text == s
}

func (p *cparser) expect(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func isTypeName(s string) bool {
	switch s {
	case "float", "double", "int", "void":
		return true
	}
	return false
}

func (p *cparser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().kind != tEOF {
		if p.cur().kind == tPragma {
			// Stray file-level pragma: ignore (include guards etc.).
			p.next()
			continue
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	return f, nil
}

func (p *cparser) parseFunc() (*FuncDecl, error) {
	ret := p.cur()
	if ret.kind != tIdent || !isTypeName(ret.text) {
		return nil, p.errf("expected return type")
	}
	if ret.text != "void" {
		return nil, p.errf("only void functions are supported")
	}
	p.next()
	name := p.cur()
	if name.kind != tIdent {
		return nil, p.errf("expected function name")
	}
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text}
	for !p.isPunct(")") {
		ct := p.cur()
		if ct.kind != tIdent || !isTypeName(ct.text) {
			return nil, p.errf("expected parameter type")
		}
		p.next()
		pn := p.cur()
		if pn.kind != tIdent {
			return nil, p.errf("expected parameter name")
		}
		p.next()
		pd := &ParamDecl{Name: pn.text, CType: ct.text}
		for p.isPunct("[") {
			p.next()
			d := p.cur()
			if d.kind != tInt {
				return nil, p.errf("expected constant array dimension")
			}
			p.next()
			v, _ := strconv.ParseInt(d.text, 10, 64)
			pd.Dims = append(pd.Dims, v)
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		fn.Params = append(fn.Params, pd)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // )
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	body, pragmas, err := p.parseBlock(fn)
	if err != nil {
		return nil, err
	}
	fn.Body = body
	fn.Pragmas = append(fn.Pragmas, pragmas...)
	return fn, nil
}

// parseBlock parses statements until '}'. Loop-scoped pragmas inside for
// bodies attach to the loop; others bubble up to the function.
func (p *cparser) parseBlock(fn *FuncDecl) ([]Stmt, []Pragma, error) {
	var stmts []Stmt
	var funcPragmas []Pragma
	for !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, nil, p.errf("unexpected EOF in block")
		}
		if p.cur().kind == tPragma {
			pr, err := parsePragma(p.next().text)
			if err != nil {
				return nil, nil, err
			}
			if pr != nil {
				funcPragmas = append(funcPragmas, *pr)
			}
			continue
		}
		s, prs, err := p.parseStmt(fn)
		if err != nil {
			return nil, nil, err
		}
		funcPragmas = append(funcPragmas, prs...)
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	p.next() // }
	return stmts, funcPragmas, nil
}

// parsePragma decodes "#pragma HLS ...". Unknown pragmas return nil.
func parsePragma(text string) (*Pragma, error) {
	fields := strings.Fields(text)
	// fields[0] == "#pragma"
	if len(fields) < 3 || !strings.EqualFold(fields[1], "HLS") {
		return nil, nil
	}
	pr := &Pragma{Kind: strings.ToLower(fields[2]), Opts: map[string]string{}}
	for _, f := range fields[3:] {
		if eq := strings.IndexByte(f, '='); eq >= 0 {
			k := strings.ToLower(f[:eq])
			v := f[eq+1:]
			switch k {
			case "variable", "port":
				pr.Var = v
			default:
				pr.Opts[k] = v
			}
			continue
		}
		// Bare words: interface mode or partition kind.
		switch strings.ToLower(f) {
		case "cyclic", "block", "complete":
			pr.Opts["kind"] = strings.ToLower(f)
		case "ap_memory", "ap_none", "m_axi", "bram":
			pr.Opts["mode"] = strings.ToLower(f)
		}
	}
	return pr, nil
}

func (p *cparser) parseStmt(fn *FuncDecl) (Stmt, []Pragma, error) {
	t := p.cur()
	switch {
	case t.kind == tIdent && t.text == "for":
		return p.parseFor(fn)
	case t.kind == tIdent && t.text == "if":
		return p.parseIf(fn)
	case t.kind == tIdent && t.text == "return":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, nil, err
		}
		return &ReturnStmt{}, nil, nil
	case t.kind == tIdent && isTypeName(t.text):
		return p.parseDecl()
	default:
		// Assignment or expression statement.
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		if p.isPunct("=") || p.isPunct("+=") || p.isPunct("-=") ||
			p.isPunct("*=") || p.isPunct("/=") {
			op := p.next().text
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, nil, err
			}
			target, ok := lhs.(*IndexExpr)
			if !ok {
				return nil, nil, p.errf("assignment target must be a variable or element")
			}
			return &AssignStmt{Target: target, Op: op, RHS: rhs}, nil, nil
		}
		if err := p.expect(";"); err != nil {
			return nil, nil, err
		}
		return &ExprStmt{X: lhs}, nil, nil
	}
}

func (p *cparser) parseDecl() (Stmt, []Pragma, error) {
	ct := p.next().text
	name := p.cur()
	if name.kind != tIdent {
		return nil, nil, p.errf("expected declaration name")
	}
	p.next()
	d := &DeclStmt{Name: name.text, CType: ct}
	for p.isPunct("[") {
		p.next()
		dim := p.cur()
		if dim.kind != tInt {
			return nil, nil, p.errf("expected constant dimension")
		}
		p.next()
		v, _ := strconv.ParseInt(dim.text, 10, 64)
		d.Dims = append(d.Dims, v)
		if err := p.expect("]"); err != nil {
			return nil, nil, err
		}
	}
	if p.isPunct("=") {
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		d.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, nil, err
	}
	return d, nil, nil
}

func (p *cparser) parseFor(fn *FuncDecl) (Stmt, []Pragma, error) {
	p.next() // for
	if err := p.expect("("); err != nil {
		return nil, nil, err
	}
	if !p.isIdent("int") {
		return nil, nil, p.errf("for loops must declare an int counter")
	}
	p.next()
	iv := p.cur()
	if iv.kind != tIdent {
		return nil, nil, p.errf("expected loop counter name")
	}
	p.next()
	if err := p.expect("="); err != nil {
		return nil, nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, nil, err
	}
	cn := p.cur()
	if cn.kind != tIdent || cn.text != iv.text {
		return nil, nil, p.errf("loop condition must test the counter")
	}
	p.next()
	cmp := p.cur().text
	if cmp != "<" && cmp != "<=" {
		return nil, nil, p.errf("loop condition must be < or <=")
	}
	p.next()
	bound, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, nil, err
	}
	in := p.cur()
	if in.kind != tIdent || in.text != iv.text {
		return nil, nil, p.errf("loop increment must update the counter")
	}
	p.next()
	step := int64(1)
	switch {
	case p.isPunct("+="):
		p.next()
		st := p.cur()
		if st.kind != tInt {
			return nil, nil, p.errf("loop step must be a constant")
		}
		p.next()
		step, _ = strconv.ParseInt(st.text, 10, 64)
	case p.isPunct("+") && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "+":
		p.next()
		p.next()
	default:
		return nil, nil, p.errf("loop increment must be += or ++")
	}
	if err := p.expect(")"); err != nil {
		return nil, nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, nil, err
	}

	f := &ForStmt{IV: iv.text, Init: init, Bound: bound, Cmp: cmp, Step: step}
	// Loop pragmas: leading pragmas in the body attach to this loop.
	var bodyStmts []Stmt
	var funcPragmas []Pragma
	for !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, nil, p.errf("unexpected EOF in loop body")
		}
		if p.cur().kind == tPragma {
			pr, err := parsePragma(p.next().text)
			if err != nil {
				return nil, nil, err
			}
			if pr == nil {
				continue
			}
			switch pr.Kind {
			case "pipeline", "unroll", "loop_flatten":
				f.Pragmas = append(f.Pragmas, *pr)
			default:
				funcPragmas = append(funcPragmas, *pr)
			}
			continue
		}
		s, prs, err := p.parseStmt(fn)
		if err != nil {
			return nil, nil, err
		}
		funcPragmas = append(funcPragmas, prs...)
		if s != nil {
			bodyStmts = append(bodyStmts, s)
		}
	}
	p.next() // }
	f.Body = bodyStmts
	return f, funcPragmas, nil
}

func (p *cparser) parseIf(fn *FuncDecl) (Stmt, []Pragma, error) {
	p.next() // if
	if err := p.expect("("); err != nil {
		return nil, nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, nil, err
	}
	then, prs, err := p.parseBlock(fn)
	if err != nil {
		return nil, nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.isIdent("else") {
		p.next()
		if err := p.expect("{"); err != nil {
			return nil, nil, err
		}
		els, prs2, err := p.parseBlock(fn)
		if err != nil {
			return nil, nil, err
		}
		st.Else = els
		prs = append(prs, prs2...)
	}
	return st, prs, nil
}

// Expression grammar: ternary > or > and > equality > relational > additive
// > multiplicative > unary > postfix > primary.

func (p *cparser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *cparser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return c, nil
	}
	p.next()
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{C: c, T: t, F: f}, nil
}

var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *cparser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.isPunct(op) {
				p.next()
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinaryExpr{Op: op, L: lhs, R: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *cparser) parseUnary() (Expr, error) {
	if p.isPunct("-") || p.isPunct("!") {
		op := p.next().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	// Cast: "(" type ")" unary
	if p.isPunct("(") && p.toks[p.pos+1].kind == tIdent && isTypeName(p.toks[p.pos+1].text) &&
		p.toks[p.pos+2].kind == tPunct && p.toks[p.pos+2].text == ")" {
		p.next()
		ct := p.next().text
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &CastExpr{CType: ct, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *cparser) parsePostfix() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal")
		}
		return &IntLit{V: v}, nil
	case tFloat:
		p.next()
		txt := t.text
		isF32 := false
		if strings.HasSuffix(txt, "f") || strings.HasSuffix(txt, "F") {
			isF32 = true
			txt = txt[:len(txt)-1]
		}
		v, err := strconv.ParseFloat(txt, 64)
		if err != nil {
			return nil, p.errf("bad float literal")
		}
		return &FloatLit{V: v, IsF32: isF32}, nil
	case tIdent:
		p.next()
		// Call?
		if p.isPunct("(") {
			p.next()
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					p.next()
				}
			}
			p.next()
			return &CallExpr{Name: t.text, Args: args}, nil
		}
		ix := &IndexExpr{Base: t.text}
		for p.isPunct("[") {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			ix.Idxs = append(ix.Idxs, e)
		}
		return ix, nil
	case tPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression")
}

// Command flowbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	flowbench                        # run every experiment at SMALL size
//	flowbench -experiment fig5       # one experiment
//	flowbench -size MINI             # change problem size
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment id: table1, table2, fig4, fig5, table3, fig6, table4, fig7, fig8, or all")
	size := flag.String("size", "SMALL", "problem size preset: MINI or SMALL")
	flag.Parse()

	cfg := experiments.Default()
	cfg.SizeName = strings.ToUpper(*size)

	funcs := map[string]func(experiments.Config) (*experiments.Table, error){
		"table1": experiments.Table1,
		"table2": experiments.Table2,
		"fig4":   experiments.Fig4,
		"fig5":   experiments.Fig5,
		"table3": experiments.Table3,
		"fig6":   experiments.Fig6,
		"table4": experiments.Table4,
		"fig7":   experiments.Fig7,
		"fig8":   experiments.Fig8,
	}

	if *exp == "all" {
		tabs, err := experiments.All(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowbench:", err)
			os.Exit(1)
		}
		for _, t := range tabs {
			fmt.Println(t)
		}
		return
	}
	fn, ok := funcs[strings.ToLower(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "flowbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := fn(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
}

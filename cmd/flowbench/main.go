// Command flowbench regenerates the paper's evaluation tables and figures.
// All flow evaluations fan across a shared worker-pool engine with a
// content-addressed result cache, so configurations repeated between
// tables (Table3/Table4 share every pair; Fig6/Fig8 overlap the sweeps)
// synthesize once.
//
// Usage:
//
//	flowbench                        # run every experiment at SMALL size
//	flowbench -experiment fig5       # one experiment
//	flowbench -size MINI             # change problem size
//	flowbench -workers 8 -stats      # wider pool + engine counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/incr"
	"repro/internal/prof"
	"repro/internal/serve"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment id: table1, table2, fig4, fig5, table3, fig6, table4, fig7, fig8, or all")
	size := flag.String("size", "SMALL", "problem size preset: MINI or SMALL")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "reuse results for identical (kernel, directives, target, flow) evaluations")
	stats := flag.Bool("stats", false, "print engine counters and phase totals after the run")
	fallback := flag.Bool("fallback", false, "degrade failed adaptor evaluations to the C++ baseline (rows marked *) instead of aborting the table")
	quarantine := flag.String("quarantine", "", "directory for repro bundles of failing evaluations (re-execute with hls-adaptor -replay)")
	retries := flag.Int("retries", 0, "re-executions granted per evaluation for transient failures")
	verify := flag.Bool("verify-semantics", false, "run every evaluation under the differential semantic oracle (a pass that changes results fails as a localized miscompile)")
	incremental := flag.Bool("incremental", false, "memoize pipeline units so repeated evaluations replay unchanged prefixes instead of recompiling")
	incrStore := flag.String("incr-store", "", "directory for the on-disk incremental store (implies -incremental); table regeneration warm-starts across processes")
	server := flag.String("server", "", "hls-serve daemon URL; evaluations run remotely with embedded fallback when it is unreachable or shedding")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
	defer stopProf()

	cfg := experiments.Default()
	cfg.SizeName = strings.ToUpper(*size)
	eopts := engine.Options{
		Workers:     *workers,
		Cache:       *cache,
		Retries:     *retries,
		Fallback:    *fallback,
		Quarantine:  *quarantine,
		Incremental: *incremental || *incrStore != "",
		Flow:        flow.Options{VerifySemantics: *verify},
	}
	if *incrStore != "" {
		st, err := incr.OpenDiskStore(*incrStore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowbench:", err)
			os.Exit(1)
		}
		eopts.IncrStore = st
	}
	if *server != "" {
		client := serve.NewClient(*server, "flowbench")
		if !client.Ready() {
			fmt.Fprintf(os.Stderr, "flowbench: server %s not ready; evaluating embedded\n", *server)
		}
		eopts.Remote = client.Remote()
	}
	eng := engine.New(eopts)
	cfg.Engine = eng

	funcs := map[string]func(experiments.Config) (*experiments.Table, error){
		"table1": experiments.Table1,
		"table2": experiments.Table2,
		"fig4":   experiments.Fig4,
		"fig5":   experiments.Fig5,
		"table3": experiments.Table3,
		"fig6":   experiments.Fig6,
		"table4": experiments.Table4,
		"fig7":   experiments.Fig7,
		"fig8":   experiments.Fig8,
	}

	t0 := time.Now()
	if *exp == "all" {
		tabs, err := experiments.All(cfg)
		if err != nil {
			stopProf()
			fmt.Fprintln(os.Stderr, "flowbench:", err)
			os.Exit(1)
		}
		for _, t := range tabs {
			fmt.Println(t)
		}
		printStats(*stats, eng, time.Since(t0))
		return
	}
	fn, ok := funcs[strings.ToLower(*exp)]
	if !ok {
		stopProf()
		fmt.Fprintf(os.Stderr, "flowbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := fn(cfg)
	if err != nil {
		stopProf()
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
	printStats(*stats, eng, time.Since(t0))
}

func printStats(enabled bool, eng *engine.Engine, wall time.Duration) {
	if !enabled {
		return
	}
	fmt.Printf("engine: wall=%s workers=%d\n%s",
		wall.Round(time.Microsecond), eng.Workers(), eng.Stats())
}

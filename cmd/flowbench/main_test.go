package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLISmoke builds the real binary and regenerates Fig8 at MINI size
// twice against one on-disk incremental store: the warm process must print
// the identical table, and the profile flags must produce non-empty files.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "flowbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	store := filepath.Join(tmp, "store")
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	cold := run("-experiment", "fig8", "-size", "MINI", "-incr-store", store,
		"-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(cold, "Fig 8") {
		t.Fatalf("no Fig 8 table in output:\n%s", cold)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}

	warm := run("-experiment", "fig8", "-size", "MINI", "-incr-store", store)
	if warm != cold {
		t.Fatalf("warm CLI run diverges from cold\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

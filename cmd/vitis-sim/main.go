// Command vitis-sim is the HLS backend stand-in: it reads LLVM IR, runs the
// readability gate, and prints a synthesis report (latency, loop IIs,
// LUT/FF/DSP/BRAM).
//
// Usage:
//
//	vitis-sim -top NAME [-clock NS] [input.ll]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hls"
	"repro/internal/llvm/parser"
)

func main() {
	top := flag.String("top", "", "top function to synthesize (required unless the module has one function)")
	clock := flag.Float64("clock", 10.0, "target clock period in ns")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	name := *top
	if name == "" {
		if len(m.Funcs) == 1 {
			name = m.Funcs[0].Name
		} else {
			for _, f := range m.Funcs {
				if f.Attrs["hls.top"] == "1" {
					name = f.Name
				}
			}
		}
	}
	if name == "" {
		fatal(fmt.Errorf("cannot determine the top function; pass -top"))
	}
	tgt := hls.DefaultTarget()
	tgt.ClockNs = *clock
	rep, err := hls.Synthesize(m, name, tgt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vitis-sim:", err)
	os.Exit(1)
}

// benchjson turns benchmark evidence into machine-readable CI artifacts.
//
// Two independent sections, each written as its own BENCH_*.json file:
//
//   - -bench-in parses `go test -bench` text (ns/op, B/op, allocs/op) into
//     BENCH_micro.json, so CI can diff micro-benchmark movement without
//     scraping test logs.
//   - -incr re-runs the incremental workloads — the Fig8 MINI DSE sweep and
//     a jacobi1d exploration — cold and then warm against the same unit
//     store, and records wall times, speedup, and unit replay hit rates in
//     BENCH_incr.json.
//
// Exit status is non-zero on any parse or flow error, and -incr fails if a
// warm sweep diverges from its cold table — a divergence guard for CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// Micro is one parsed `go test -bench` result line.
type Micro struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Incr is one cold/warm incremental workload measurement.
type Incr struct {
	Workload    string  `json:"workload"`
	Size        string  `json:"size"`
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
	Speedup     float64 `json:"speedup"`
	Jobs        int64   `json:"jobs"`
	UnitHits    int64   `json:"unit_hits"`
	UnitMisses  int64   `json:"unit_misses"`
	UnitHitRate float64 `json:"unit_hit_rate"`
	FullReplays int64   `json:"full_replays"`
}

func main() {
	benchIn := flag.String("bench-in", "", "go test -bench output to convert ('-' for stdin)")
	runIncr := flag.Bool("incr", false, "measure incremental cold/warm workloads (Fig8 + jacobi1d)")
	size := flag.String("size", "MINI", "polybench size for -incr workloads")
	outDir := flag.String("out-dir", ".", "directory for BENCH_*.json artifacts")
	flag.Parse()

	if *benchIn == "" && !*runIncr {
		fmt.Fprintln(os.Stderr, "benchjson: nothing to do: pass -bench-in and/or -incr")
		os.Exit(2)
	}
	if *benchIn != "" {
		micro, err := parseBench(*benchIn)
		if err != nil {
			fatal(err)
		}
		if len(micro) == 0 {
			fatal(fmt.Errorf("no benchmark lines found in %s", *benchIn))
		}
		if err := writeJSON(filepath.Join(*outDir, "BENCH_micro.json"), micro); err != nil {
			fatal(err)
		}
	}
	if *runIncr {
		rows, err := measureIncr(*size)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(filepath.Join(*outDir, "BENCH_incr.json"), rows); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// parseBench extracts result lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkParseClonePrint/parse-8   200   62589 ns/op   39056 B/op   359 allocs/op
func parseBench(path string) ([]Micro, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []Micro
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		m := Micro{Name: f[0], Iterations: iters, NsPerOp: ns}
		for i := 3; i+1 < len(f); i++ {
			switch f[i+1] {
			case "B/op":
				m.BytesPerOp, _ = strconv.ParseInt(f[i], 10, 64)
			case "allocs/op":
				m.AllocsPerOp, _ = strconv.ParseInt(f[i], 10, 64)
			}
		}
		out = append(out, m)
	}
	return out, sc.Err()
}

// measureIncr runs each workload cold and then warm against the same unit
// store, through fresh engines so the whole-flow cache never masks unit
// replay, and errors if a warm run's rendered result diverges from cold.
func measureIncr(size string) ([]Incr, error) {
	workloads := []struct {
		name string
		run  func(eng *engine.Engine) (string, error)
	}{
		{"fig8-dse-sweep", func(eng *engine.Engine) (string, error) {
			tab, err := experiments.Fig8(experiments.Config{
				SizeName: size, Target: hls.DefaultTarget(), Engine: eng})
			if err != nil {
				return "", err
			}
			return tab.String(), nil
		}},
		{"jacobi1d-dse", func(eng *engine.Engine) (string, error) {
			k := polybench.Get("jacobi1d")
			if k == nil {
				return "", fmt.Errorf("jacobi1d not registered")
			}
			s, err := k.SizeOf(size)
			if err != nil {
				return "", err
			}
			res, err := dse.ExploreWith(func() *mlir.Module { return k.Build(s) }, k.Name,
				hls.DefaultTarget(),
				dse.Options{Engine: eng, CacheScope: size, FailFast: true, Precheck: true})
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			for _, p := range res.Pareto {
				fmt.Fprintf(&sb, "%s %d %.0f\n", p.Label, p.Latency(), p.Area)
			}
			return sb.String(), nil
		}},
	}

	var out []Incr
	for _, w := range workloads {
		store := incr.NewMemStore()
		newEng := func() *engine.Engine {
			return engine.New(engine.Options{Workers: 1, Incremental: true, IncrStore: store})
		}
		coldEng := newEng()
		start := time.Now()
		coldOut, err := w.run(coldEng)
		coldT := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s cold: %w", w.name, err)
		}
		warmEng := newEng()
		start = time.Now()
		warmOut, err := w.run(warmEng)
		warmT := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s warm: %w", w.name, err)
		}
		if warmOut != coldOut {
			return nil, fmt.Errorf("%s: warm replay diverges from cold run", w.name)
		}
		st := warmEng.Stats()
		out = append(out, Incr{
			Workload:    w.name,
			Size:        size,
			ColdMs:      float64(coldT.Microseconds()) / 1000,
			WarmMs:      float64(warmT.Microseconds()) / 1000,
			Speedup:     float64(coldT) / float64(warmT),
			Jobs:        st.Jobs,
			UnitHits:    st.UnitHits,
			UnitMisses:  st.UnitMisses,
			UnitHitRate: st.UnitHitRate(),
			FullReplays: st.FullReplays,
		})
	}
	return out, nil
}

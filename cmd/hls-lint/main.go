// Command hls-lint runs the cross-layer static-analysis suite over IR files
// and reports diagnostics. It accepts the LLVM-like IR the flow's later
// stages exchange (.ll, the default) or textual MLIR (.mlir or -mlir), so
// defects can be caught at whichever layer they first appear. Several files
// and directories can be linted in one run; directories are walked
// recursively for .ll and .mlir files.
//
// Usage:
//
//	hls-lint input.ll                 # all checks, text report
//	hls-lint a.ll b.ll build/         # several files and a directory tree
//	hls-lint -json input.ll           # machine-readable report
//	hls-lint -format sarif input.ll   # SARIF 2.1.0 for code-scanning UIs
//	hls-lint -checks uninit-load,gep-bounds input.ll
//	hls-lint -severity warning -      # read stdin, hide infos
//	hls-lint -mlir kernel.mlir        # directive lints on MLIR
//	hls-lint -explain 1a2b3c4d in.ll  # show one finding's abstract state
//	hls-lint -deps input.ll           # affine dependence summary per loop nest
//	hls-lint -deps -format json in.ll # the same, machine-readable
//	hls-lint -widths input.ll         # inferred bit widths + area delta per function
//	hls-lint -list                    # list registered checks
//
// Exit status: 0 when no error-severity diagnostics were produced (warnings
// and infos do not fail the run), 1 when errors were found, 2 on usage or
// parse failures. -explain exits 0 when the finding exists and 2 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/lint"
	llparser "repro/internal/llvm/parser"
	mlirparser "repro/internal/mlir/parser"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON (same as -format json)")
	format := flag.String("format", "text", "report format: text, json, or sarif")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all; see -list)")
	invariants := flag.Bool("invariants", false, "run only the invariant subset (the verify-each checks)")
	severity := flag.String("severity", "info", "minimum severity to report: info, warning, or error")
	list := flag.Bool("list", false, "list registered checks and exit")
	clock := flag.Float64("clock", 10.0, "target clock period in ns (sets the dependence/latency model)")
	mlirIn := flag.Bool("mlir", false, "parse the input as MLIR instead of LLVM IR")
	explain := flag.String("explain", "", "print one finding (by its [id]) with the analysis state behind it")
	deps := flag.Bool("deps", false, "dump the affine dependence summary per loop nest instead of diagnostics")
	widths := flag.Bool("widths", false, "dump the inferred per-value bit widths and the declared-vs-inferred area delta")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			inv := ""
			if c.Invariant {
				inv = " [invariant]"
			}
			fmt.Printf("%-18s %s%s\n", c.Name, c.Desc, inv)
		}
		return
	}

	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		usage(fmt.Errorf("unknown format %q (want text, json, or sarif)", *format))
	}

	minSev, err := parseSeverity(*severity)
	if err != nil {
		usage(err)
	}
	opts := lint.Options{InvariantsOnly: *invariants}
	opts.Target = hls.DefaultTarget()
	opts.Target.ClockNs = *clock
	if *checks != "" {
		known := map[string]bool{}
		for _, n := range lint.CheckNames() {
			known[n] = true
		}
		opts.Enabled = map[string]bool{}
		for _, n := range strings.Split(*checks, ",") {
			n = strings.TrimSpace(n)
			if !known[n] {
				usage(fmt.Errorf("unknown check %q (see -list)", n))
			}
			opts.Enabled[n] = true
		}
	}

	inputs, err := collectInputs(flag.Args())
	if err != nil {
		usage(err)
	}

	if *deps {
		runDeps(inputs, *format, *mlirIn)
		return
	}
	if *widths {
		runWidths(inputs, *format, *mlirIn, opts.Target)
		return
	}

	var all diag.Diagnostics
	for _, path := range inputs {
		src, err := readInput(path)
		if err != nil {
			usage(err)
		}
		var ds diag.Diagnostics
		if *mlirIn || strings.HasSuffix(path, ".mlir") {
			m, err := mlirparser.Parse(src)
			if err != nil {
				usage(fmt.Errorf("%s: parsing MLIR: %w", inputName(path), err))
			}
			ds = lint.MLIRDirectives(m)
		} else {
			m, err := llparser.Parse(src)
			if err != nil {
				usage(fmt.Errorf("%s: parsing LLVM IR: %w", inputName(path), err))
			}
			ds = lint.Module(m, opts)
		}
		if path != "" && path != "-" {
			for i := range ds {
				ds[i].File = path
			}
		}
		all = append(all, ds...)
	}
	all.Sort()
	all.AssignIDs()

	if *explain != "" {
		d, ok := all.FindID(*explain)
		if !ok {
			usage(fmt.Errorf("no finding with id %q (run without -explain to list ids)", *explain))
		}
		fmt.Println(d.String())
		if d.Explanation != "" {
			fmt.Printf("    analysis: %s\n", d.Explanation)
		}
		return
	}

	all = all.Filter(minSev)
	switch *format {
	case "json":
		b, err := all.JSON()
		if err != nil {
			usage(err)
		}
		fmt.Printf("%s\n", b)
	case "sarif":
		b, err := all.SARIFWithMeta("hls-lint", lint.RuleMetadata())
		if err != nil {
			usage(err)
		}
		fmt.Printf("%s\n", b)
	default:
		fmt.Print(all.Text())
	}
	if all.HasErrors() {
		os.Exit(1)
	}
}

// runDeps prints the affine dependence summary (`-deps`): per loop nest, the
// load/store pairs the points-to analysis cannot separate, the tests applied,
// and the resulting distance/direction vectors.
func runDeps(inputs []string, format string, mlirIn bool) {
	if mlirIn {
		usage(fmt.Errorf("-deps needs LLVM IR input (loop recovery runs on the lowered form)"))
	}
	var all []lint.FuncDeps
	for _, path := range inputs {
		src, err := readInput(path)
		if err != nil {
			usage(err)
		}
		if strings.HasSuffix(path, ".mlir") {
			usage(fmt.Errorf("%s: -deps needs LLVM IR input", inputName(path)))
		}
		m, err := llparser.Parse(src)
		if err != nil {
			usage(fmt.Errorf("%s: parsing LLVM IR: %w", inputName(path), err))
		}
		all = append(all, lint.DependenceSummary(m)...)
	}
	switch format {
	case "json":
		b, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			usage(err)
		}
		fmt.Printf("%s\n", b)
	case "text":
		lint.WriteDependenceText(os.Stdout, all)
	default:
		usage(fmt.Errorf("-deps supports text and json formats, not %q", format))
	}
}

// runWidths prints the bitwidth-inference summary (`-widths`): per function,
// every named integer value's known bits, fused range, minimal sound width,
// and demanded-narrowed hardware width, plus the LUT/FF/DSP delta between
// the declared and inferred cost models.
func runWidths(inputs []string, format string, mlirIn bool, tgt hls.Target) {
	if mlirIn {
		usage(fmt.Errorf("-widths needs LLVM IR input (the analysis runs on the lowered form)"))
	}
	var all []lint.FuncWidths
	for _, path := range inputs {
		src, err := readInput(path)
		if err != nil {
			usage(err)
		}
		if strings.HasSuffix(path, ".mlir") {
			usage(fmt.Errorf("%s: -widths needs LLVM IR input", inputName(path)))
		}
		m, err := llparser.Parse(src)
		if err != nil {
			usage(fmt.Errorf("%s: parsing LLVM IR: %w", inputName(path), err))
		}
		all = append(all, lint.WidthSummary(m, tgt)...)
	}
	switch format {
	case "json":
		b, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			usage(err)
		}
		fmt.Printf("%s\n", b)
	case "text":
		lint.WriteWidthsText(os.Stdout, all)
	default:
		usage(fmt.Errorf("-widths supports text and json formats, not %q", format))
	}
}

// collectInputs expands the positional arguments into a list of inputs: ""
// (no args) and "-" mean stdin, files pass through, and directories are
// walked recursively for .ll/.mlir files in lexical order.
func collectInputs(args []string) ([]string, error) {
	if len(args) == 0 {
		return []string{""}, nil
	}
	var out []string
	for _, a := range args {
		if a == "-" {
			out = append(out, a)
			continue
		}
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, a)
			continue
		}
		var found []string
		err = filepath.WalkDir(a, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && (strings.HasSuffix(p, ".ll") || strings.HasSuffix(p, ".mlir")) {
				found = append(found, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(found)
		if len(found) == 0 {
			return nil, fmt.Errorf("%s: no .ll or .mlir files found", a)
		}
		out = append(out, found...)
	}
	return out, nil
}

func inputName(path string) string {
	if path == "" || path == "-" {
		return "<stdin>"
	}
	return path
}

func parseSeverity(name string) (diag.Severity, error) {
	switch name {
	case "info":
		return diag.SevInfo, nil
	case "warning":
		return diag.SevWarning, nil
	case "error":
		return diag.SevError, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning, or error)", name)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "hls-lint:", err)
	os.Exit(2)
}

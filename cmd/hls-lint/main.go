// Command hls-lint runs the cross-layer static-analysis suite over an IR
// file and reports diagnostics. It accepts the LLVM-like IR the flow's
// later stages exchange (.ll, the default) or textual MLIR (.mlir or
// -mlir), so defects can be caught at whichever layer they first appear.
//
// Usage:
//
//	hls-lint input.ll                 # all checks, text report
//	hls-lint -json input.ll           # machine-readable report
//	hls-lint -checks uninit-load,gep-bounds input.ll
//	hls-lint -severity warning -      # read stdin, hide infos
//	hls-lint -mlir kernel.mlir        # directive lints on MLIR
//	hls-lint -list                    # list registered checks
//
// Exit status: 0 when no error-severity diagnostics were produced (warnings
// and infos do not fail the run), 1 when errors were found, 2 on usage or
// parse failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/lint"
	llparser "repro/internal/llvm/parser"
	mlirparser "repro/internal/mlir/parser"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all; see -list)")
	invariants := flag.Bool("invariants", false, "run only the invariant subset (the verify-each checks)")
	severity := flag.String("severity", "info", "minimum severity to report: info, warning, or error")
	list := flag.Bool("list", false, "list registered checks and exit")
	clock := flag.Float64("clock", 10.0, "target clock period in ns (sets the dependence/latency model)")
	mlirIn := flag.Bool("mlir", false, "parse the input as MLIR instead of LLVM IR")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			inv := ""
			if c.Invariant {
				inv = " [invariant]"
			}
			fmt.Printf("%-18s %s%s\n", c.Name, c.Desc, inv)
		}
		return
	}

	minSev, err := parseSeverity(*severity)
	if err != nil {
		usage(err)
	}
	opts := lint.Options{InvariantsOnly: *invariants}
	opts.Target = hls.DefaultTarget()
	opts.Target.ClockNs = *clock
	if *checks != "" {
		known := map[string]bool{}
		for _, n := range lint.CheckNames() {
			known[n] = true
		}
		opts.Enabled = map[string]bool{}
		for _, n := range strings.Split(*checks, ",") {
			n = strings.TrimSpace(n)
			if !known[n] {
				usage(fmt.Errorf("unknown check %q (see -list)", n))
			}
			opts.Enabled[n] = true
		}
	}

	path := flag.Arg(0)
	src, err := readInput(path)
	if err != nil {
		usage(err)
	}

	var ds diag.Diagnostics
	if *mlirIn || strings.HasSuffix(path, ".mlir") {
		m, err := mlirparser.Parse(src)
		if err != nil {
			usage(fmt.Errorf("parsing MLIR: %w", err))
		}
		ds = lint.MLIRDirectives(m)
	} else {
		m, err := llparser.Parse(src)
		if err != nil {
			usage(fmt.Errorf("parsing LLVM IR: %w", err))
		}
		ds = lint.Module(m, opts)
	}
	ds = ds.Filter(minSev)

	if *jsonOut {
		b, err := ds.JSON()
		if err != nil {
			usage(err)
		}
		fmt.Printf("%s\n", b)
	} else {
		fmt.Print(ds.Text())
	}
	if ds.HasErrors() {
		os.Exit(1)
	}
}

func parseSeverity(name string) (diag.Severity, error) {
	switch name {
	case "info":
		return diag.SevInfo, nil
	case "warning":
		return diag.SevWarning, nil
	case "error":
		return diag.SevError, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning, or error)", name)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "hls-lint:", err)
	os.Exit(2)
}

// Command mlir-translate lowers an MLIR module all the way to LLVM IR (.ll),
// reproducing upstream behavior: the output uses the modern dialect
// (opaque pointers, descriptor ABI, current intrinsics) and is NOT yet
// HLS-readable — run hls-adaptor on it next.
//
// Usage:
//
//	mlir-translate [input.mlir]      # stdin when no file is given
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mlir/lower"
	"repro/internal/mlir/parser"
	"repro/internal/translate"
)

func main() {
	lifetimes := flag.Bool("lifetime-markers", true, "emit llvm.lifetime intrinsics around local buffers")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	if err := m.Verify(); err != nil {
		fatal(err)
	}
	if err := lower.AffineToSCF(m); err != nil {
		fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		fatal(err)
	}
	lm, err := translate.Translate(m, translate.Options{EmitLifetimeMarkers: *lifetimes})
	if err != nil {
		fatal(err)
	}
	fmt.Print(lm.Print())
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlir-translate:", err)
	os.Exit(1)
}

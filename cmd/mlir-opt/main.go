// Command mlir-opt parses MLIR text, runs the requested passes, and prints
// the result — the front half of both HLS flows.
//
// Usage:
//
//	mlir-opt [flags] [input.mlir]    # stdin when no file is given
//
// Pass flags (applied in the listed order when set):
//
//	-canonicalize              constant folding + DCE
//	-cse                       common-subexpression elimination
//	-pipeline II               mark innermost loops for pipelining
//	-unroll N                  unroll innermost loops by N
//	-partition kind,factor     cyclic/block/complete partition on all args
//	-top NAME                  mark the top function
//	-lower-affine              affine -> scf
//	-lower-scf                 scf -> cf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/lint"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/parser"
	"repro/internal/mlir/passes"
)

func main() {
	canonicalize := flag.Bool("canonicalize", false, "run canonicalization")
	cse := flag.Bool("cse", false, "run CSE")
	pipeline := flag.Int("pipeline", 0, "pipeline innermost loops with this II")
	unroll := flag.Int("unroll", 0, "unroll innermost loops by this factor")
	partition := flag.String("partition", "", "partition all args: kind,factor (e.g. cyclic,2)")
	top := flag.String("top", "", "mark this function as the HLS top")
	lowerAffine := flag.Bool("lower-affine", false, "lower affine to scf")
	lowerSCF := flag.Bool("lower-scf", false, "lower scf to cf")
	verify := flag.Bool("verify", true, "verify the module after parsing and passes")
	verifyEach := flag.Bool("verify-each", false, "additionally run the lint invariant checks after every pass, naming the offending pass")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *verify {
		if err := m.Verify(); err != nil {
			fatal(err)
		}
	}

	pm := passes.NewPassManager()
	pm.VerifyEach = *verify
	if *verifyEach {
		pm.VerifyEach = true
		pm.AfterPass = func(_ string, mm *mlir.Module) error { return lint.MLIRInvariants(mm) }
	}
	if *top != "" {
		pm.Add(passes.MarkTop(*top))
	}
	if *pipeline > 0 {
		pm.Add(passes.PipelineInnermost(*pipeline))
	}
	if *unroll > 1 {
		pm.Add(passes.MarkUnroll(*unroll), passes.LoopUnroll(0, true))
	}
	if *partition != "" {
		parts := strings.Split(*partition, ",")
		spec := passes.PartitionSpec{Kind: parts[0]}
		if len(parts) > 1 {
			spec.Factor, _ = strconv.Atoi(parts[1])
		}
		pm.Add(passes.PartitionAllArgs(spec))
	}
	if *canonicalize {
		pm.Add(passes.Canonicalize())
	}
	if *cse {
		pm.Add(passes.CSE())
	}
	if err := pm.Run(m); err != nil {
		fatal(err)
	}
	if *lowerAffine {
		if err := lower.AffineToSCF(m); err != nil {
			fatal(err)
		}
	}
	if *lowerSCF {
		if err := lower.SCFToCF(m); err != nil {
			fatal(err)
		}
	}
	fmt.Print(m.Print())
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlir-opt:", err)
	os.Exit(1)
}

// Command hls-dse runs the automated design-space explorer (an extension
// beyond the paper) on a benchmark kernel or an MLIR file, printing every
// evaluated configuration and the latency/area Pareto frontier.
//
// Usage:
//
//	hls-dse -kernel gemm [-size SMALL]        # explore a polybench kernel
//	hls-dse -top name input.mlir              # explore a hand-written kernel
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dse"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/polybench"
)

func main() {
	kernel := flag.String("kernel", "", "polybench kernel name (see flowbench table1)")
	size := flag.String("size", "SMALL", "problem size preset")
	top := flag.String("top", "", "top function for MLIR-file input")
	clock := flag.Float64("clock", 10.0, "target clock period in ns")
	flag.Parse()

	tgt := hls.DefaultTarget()
	tgt.ClockNs = *clock

	var build func() *mlir.Module
	var name string
	switch {
	case *kernel != "":
		k := polybench.Get(*kernel)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		s, err := k.SizeOf(*size)
		if err != nil {
			fatal(err)
		}
		build = func() *mlir.Module { return k.Build(s) }
		name = k.Name
	case flag.Arg(0) != "":
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *top == "" {
			fatal(fmt.Errorf("-top is required for MLIR-file input"))
		}
		build = func() *mlir.Module {
			m, err := parser.Parse(string(src))
			if err != nil {
				fatal(err)
			}
			return m
		}
		name = *top
	default:
		fatal(fmt.Errorf("pass -kernel NAME or an input.mlir with -top"))
	}

	res, err := dse.Explore(build, name, tgt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("explored %d configurations of %s:\n\n", len(res.Points), name)
	pts := append([]dse.Point(nil), res.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Latency() < pts[j].Latency() })
	fmt.Printf("%-20s %10s %10s\n", "config", "latency", "area")
	for _, p := range pts {
		fmt.Printf("%-20s %10d %10.0f\n", p.Label, p.Latency(), p.Area)
	}
	fmt.Printf("\nPareto frontier (latency vs area):\n%s", res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hls-dse:", err)
	os.Exit(1)
}

// Command hls-dse runs the automated design-space explorer (an extension
// beyond the paper) on a benchmark kernel or an MLIR file, printing every
// evaluated configuration and the latency/area Pareto frontier. The sweep
// fans across a worker pool; failing configurations are reported and the
// rest of the space still evaluates.
//
// Usage:
//
//	hls-dse -kernel gemm [-size SMALL]        # explore a polybench kernel
//	hls-dse -top name input.mlir              # explore a hand-written kernel
//	hls-dse -kernel gemm -workers 8 -stats    # wider pool + engine counters
//	hls-dse -kernel gemm -journal sweep.jsonl # crash-resumable sweep
//	hls-dse -kernel gemm -fallback -quarantine ./quarantine
//
// -oracle N samples the differential semantic oracle across the sweep:
// every Nth configuration re-executes its IR after every pipeline unit
// against the pristine kernel's reference run (N=1 verifies every point).
// -inject-miscompile config:stage/pass arms a deliberate wrong rewrite in
// one configuration's pipeline, proving end to end that the oracle
// detects, localizes, and quarantines it.
//
// Exit codes: 0 every configuration evaluated cleanly; 1 the oracle found
// a miscompile — a pass that changed results is never a soft failure — or
// a hard failure (nothing usable produced); 2 the sweep completed but some
// configurations failed for non-semantic reasons or were degraded to the
// C++ fallback.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/polybench"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/serve"
)

func main() {
	kernel := flag.String("kernel", "", "polybench kernel name (see flowbench table1)")
	size := flag.String("size", "SMALL", "problem size preset")
	top := flag.String("top", "", "top function for MLIR-file input")
	clock := flag.Float64("clock", 10.0, "target clock period in ns")
	costModel := flag.String("cost-model", "declared", "operator width source: declared (type widths) or inferred (bitwidth analysis)")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", false, "reuse results for identical configurations")
	timeout := flag.Duration("timeout", 0, "per-configuration timeout (0 = none)")
	failfast := flag.Bool("failfast", false, "abort the sweep on the first failing configuration")
	precheck := flag.Bool("precheck", false, "prune II-infeasible pipeline points before the sweep (never changes the frontier)")
	stats := flag.Bool("stats", false, "print engine counters and phase totals")
	journalPath := flag.String("journal", "", "write-ahead journal file; a killed sweep rerun with the same file resumes without recomputing finished points")
	fallback := flag.Bool("fallback", false, "degrade configurations whose direct-IR path fails to the C++ baseline flow (marked degraded, exit 2)")
	quarantine := flag.String("quarantine", "", "directory for self-contained repro bundles of failing configurations (re-execute with hls-adaptor -replay)")
	retries := flag.Int("retries", 0, "re-executions granted per configuration for transient failures (timeouts)")
	seed := flag.Int64("seed", 0, "seed for the retry backoff jitter")
	injectPanic := flag.String("inject-panic", "", "chaos hook: panic inside `config:stage/pass` of the direct path, exercising isolation/fallback/quarantine end to end")
	oracleRate := flag.Int("oracle", 0, "sample the differential semantic oracle on every Nth configuration (1 = every point, 0 = off)")
	injectMiscompile := flag.String("inject-miscompile", "", "chaos hook: corrupt the IR inside `config:stage/pass`, exercising oracle detection/localization/quarantine end to end")
	incremental := flag.Bool("incremental", false, "memoize pipeline units so repeated or edited sweeps replay unchanged prefixes instead of recompiling")
	incrStore := flag.String("incr-store", "", "directory for the on-disk incremental store (implies -incremental); sweeps warm-start across processes")
	server := flag.String("server", "", "hls-serve daemon URL; points evaluate remotely with embedded fallback when it is unreachable or shedding")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	// main exits through os.Exit on every path, so the profiles are
	// flushed explicitly rather than deferred.
	stopProfile = stopProf

	tgt := hls.DefaultTarget()
	tgt.ClockNs = *clock
	switch *costModel {
	case "declared":
		tgt.CostModel = hls.CostDeclared
	case "inferred":
		tgt.CostModel = hls.CostInferred
	default:
		fatal(fmt.Errorf("unknown -cost-model %q (want declared or inferred)", *costModel))
	}

	var build func() *mlir.Module
	var name, scope string
	var spec *engine.RemoteSpec
	switch {
	case *kernel != "":
		k := polybench.Get(*kernel)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		s, err := k.SizeOf(*size)
		if err != nil {
			fatal(err)
		}
		build = func() *mlir.Module { return k.Build(s) }
		name = k.Name
		scope = *size
		spec = &engine.RemoteSpec{Kernel: *kernel, Size: *size}
	case flag.Arg(0) != "":
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *top == "" {
			fatal(fmt.Errorf("-top is required for MLIR-file input"))
		}
		build = func() *mlir.Module {
			m, err := parser.Parse(string(src))
			if err != nil {
				fatal(err)
			}
			return m
		}
		name = *top
		// Scope the cache to the file's content, not its path.
		scope = fmt.Sprintf("%x", sha256.Sum256(src))
		spec = &engine.RemoteSpec{MLIR: string(src)}
	default:
		fatal(fmt.Errorf("pass -kernel NAME or an input.mlir with -top"))
	}

	opts := dse.Options{
		Workers:     *workers,
		Cache:       *cache,
		FailFast:    *failfast,
		Timeout:     *timeout,
		CacheScope:  scope,
		Precheck:    *precheck,
		Oracle:      *oracleRate,
		Incremental: *incremental || *incrStore != "",
	}
	if *incrStore != "" {
		st, err := incr.OpenDiskStore(*incrStore)
		if err != nil {
			fatal(err)
		}
		opts.IncrStore = st
	}
	if *server != "" {
		opts.RemoteSpec = spec
	}
	if *fallback || *quarantine != "" || *retries > 0 || *injectPanic != "" || *injectMiscompile != "" || *server != "" {
		eopts := engine.Options{
			Workers:     *workers,
			Cache:       *cache,
			Retries:     *retries,
			Seed:        *seed,
			Fallback:    *fallback,
			Quarantine:  *quarantine,
			Incremental: opts.Incremental,
			IncrStore:   opts.IncrStore,
		}
		if spec := *injectPanic; spec != "" {
			label, unit, ok := strings.Cut(spec, ":")
			if !ok {
				fatal(fmt.Errorf("-inject-panic wants config:stage/pass, got %q", spec))
			}
			eopts.FlowFaultHook = func(job engine.Job, flowName, stage, pass string) {
				if flowName == "adaptor" && job.Label == label && stage+"/"+pass == unit {
					panic("injected panic at " + spec)
				}
			}
		}
		if *server != "" {
			client := serve.NewClient(*server, "hls-dse")
			if !client.Ready() {
				fmt.Fprintf(os.Stderr, "hls-dse: server %s not ready; evaluating embedded\n", *server)
			}
			eopts.Remote = client.Remote()
		}
		if spec := *injectMiscompile; spec != "" {
			label, unit, ok := strings.Cut(spec, ":")
			if !ok {
				fatal(fmt.Errorf("-inject-miscompile wants config:stage/pass, got %q", spec))
			}
			eopts.MiscompileHook = func(job engine.Job) string {
				if job.Label == label {
					return unit
				}
				return ""
			}
		}
		opts.Engine = engine.New(eopts)
	}
	var journal *resilience.Journal
	if *journalPath != "" {
		j, err := resilience.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		journal = j
		opts.Journal = j
	}

	t0 := time.Now()
	res, err := dse.ExploreWith(build, name, tgt, opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0)

	degraded := 0
	for _, p := range res.Points {
		if p.Degraded {
			degraded++
		}
	}
	fmt.Printf("explored %d configurations of %s", len(res.Points), name)
	if res.Resumed > 0 {
		fmt.Printf(" (%d resumed from %s)", res.Resumed, *journalPath)
	}
	fmt.Printf(":\n\n")
	pts := append([]dse.Point(nil), res.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Latency() < pts[j].Latency() })
	fmt.Printf("%-20s %10s %10s\n", "config", "latency", "area")
	for _, p := range pts {
		mark := ""
		if p.Degraded {
			mark = "  degraded"
		}
		fmt.Printf("%-20s %10d %10.0f%s\n", p.Label, p.Latency(), p.Area, mark)
	}
	if len(res.Pruned) > 0 {
		fmt.Printf("\npre-check pruned %d configuration(s):\n", len(res.Pruned))
		for _, pp := range res.Pruned {
			fmt.Printf("  %-20s %s\n", pp.Label, pp.Reason)
		}
	}
	if len(res.Errors) > 0 {
		fmt.Printf("\n%d configuration(s) failed:\n", len(res.Errors))
		for _, pe := range res.Errors {
			fmt.Printf("  %-20s %v\n", pe.Label, pe.Err)
		}
	}
	if degraded > 0 {
		fmt.Printf("\n%d configuration(s) degraded to the C++ fallback (direct path failed)\n", degraded)
	}
	if res.Stats.Quarantined > 0 {
		fmt.Printf("%d repro bundle(s) in %s (re-execute with hls-adaptor -replay)\n",
			res.Stats.Quarantined, *quarantine)
	}
	fmt.Printf("\nPareto frontier (latency vs area):\n%s", res)
	if *stats {
		fmt.Printf("\nengine: wall=%s workers=%d\n%s",
			wall.Round(time.Microsecond), effectiveWorkers(*workers), res.Stats)
	}
	if journal != nil {
		journal.Close()
	}
	// A miscompile is never a soft failure: a pass that changed results
	// exits 1, same as a hard failure. Exit 2 distinguishes "the sweep
	// completed but not every point is the direct path's own result" from
	// clean success.
	miscompiles := 0
	for _, pe := range res.Errors {
		if pf, ok := resilience.AsPassFailure(pe.Err); ok && pf.Kind == resilience.KindMiscompile {
			miscompiles++
		}
	}
	if err := stopProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "hls-dse:", err)
	}
	if miscompiles > 0 {
		fmt.Fprintf(os.Stderr, "hls-dse: MISCOMPILE: the semantic oracle caught %d configuration(s) computing wrong results\n", miscompiles)
		os.Exit(1)
	}
	if len(res.Errors) > 0 || degraded > 0 {
		os.Exit(2)
	}
}

// stopProfile flushes the -cpuprofile/-memprofile outputs; replaced in
// main once profiling starts.
var stopProfile = func() error { return nil }

func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

func fatal(err error) {
	stopProfile()
	fmt.Fprintln(os.Stderr, "hls-dse:", err)
	os.Exit(1)
}

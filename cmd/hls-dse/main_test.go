package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLISmoke builds the real binary and drives the incremental and
// profiling flags end to end: a sweep against an on-disk store, then a
// warm re-run from a fresh process, must print identical tables, and both
// profile files must land non-empty.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "hls-dse")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	store := filepath.Join(tmp, "store")
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	cold := run("-kernel", "gemm", "-size", "MINI", "-incr-store", store,
		"-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(cold, "Pareto frontier") {
		t.Fatalf("no frontier in output:\n%s", cold)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	entries, err := os.ReadDir(store)
	if err != nil || len(entries) == 0 {
		t.Fatalf("incremental store %s not populated (err=%v)", store, err)
	}

	// A fresh process against the same store must warm-start to the same
	// table (output is deterministic without -stats).
	warm := run("-kernel", "gemm", "-size", "MINI", "-incr-store", store)
	if warm != cold {
		t.Fatalf("warm CLI run diverges from cold\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

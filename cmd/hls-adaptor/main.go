// Command hls-adaptor is the paper's contribution as a standalone tool: it
// reads LLVM IR (as produced by mlir-translate), legalizes it into
// HLS-readable IR, prints the adapted module, and reports the applied fixes
// on stderr.
//
// Usage:
//
//	hls-adaptor [-top NAME] [-report] [input.ll]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/llvm/parser"
)

func main() {
	top := flag.String("top", "", "top function (defaults to the hls.top attribute)")
	report := flag.Bool("report", true, "print the fix report to stderr")
	check := flag.Bool("check", true, "verify the result passes the HLS readability gate")
	runLint := flag.Bool("lint", false, "run the hls-lint static-analysis suite on the adapted IR (report on stderr)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	rep, err := core.Adapt(m, core.Options{TopFunc: *top})
	if err != nil {
		fatal(err)
	}
	if *check {
		if vs := hls.Check(m); len(vs) > 0 {
			fmt.Fprintln(os.Stderr, "hls-adaptor: WARNING: result still violates the gate:")
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
		}
	}
	if *report {
		fmt.Fprintf(os.Stderr, "hls-adaptor: %d fixes applied\n%s", rep.Total(), rep)
	}
	if *runLint {
		if ds := lint.Module(m, lint.Options{}); len(ds) > 0 {
			fmt.Fprintf(os.Stderr, "hls-adaptor: lint report:\n%s", ds.Text())
		}
	}
	fmt.Print(m.Print())
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hls-adaptor:", err)
	os.Exit(1)
}

// Command hls-adaptor is the paper's contribution as a standalone tool: it
// reads LLVM IR (as produced by mlir-translate), legalizes it into
// HLS-readable IR, prints the adapted module, and reports the applied fixes
// on stderr.
//
// Usage:
//
//	hls-adaptor [-top NAME] [-report] [-verify-semantics] [input.ll]
//	hls-adaptor -replay repro-<id>.json   # re-execute a quarantine bundle
//
// -verify-semantics differentially executes the module before and after
// adaptation on identical deterministic inputs (bitwise for integers, ULP
// tolerance for floats) and runs the strict HLS conformance gate on the
// result; a divergence is a miscompile and exits 1 — never 2. A module the
// oracle cannot execute (an unrecoverable shape, an unsupported op) is an
// oracle limitation, warned about and not treated as a failure.
//
// Replay mode re-runs the flow recorded in a repro bundle (written by the
// engine's quarantine bisector) with panic isolation and verify-each —
// re-arming the bundle's recorded miscompile injection and the semantic
// oracle for miscompile-kind failures — and reports whether the recorded
// failure reproduces. Exit codes: 0 the failure reproduced (and was
// re-pinned), 2 the replay ran clean (the original failure was transient
// or environmental), 1 the bundle could not be replayed at all. The
// resilience.ReplayExit* constants are the single source of truth for
// these values; README and this help text mirror them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/llvm"
	"repro/internal/llvm/parser"
	"repro/internal/mlir"
	mlirparser "repro/internal/mlir/parser"
	"repro/internal/oracle"
	"repro/internal/resilience"
)

func main() {
	top := flag.String("top", "", "top function (defaults to the hls.top attribute)")
	report := flag.Bool("report", true, "print the fix report to stderr")
	check := flag.Bool("check", true, "verify the result passes the HLS readability gate")
	runLint := flag.Bool("lint", false, "run the hls-lint static-analysis suite on the adapted IR (report on stderr)")
	verify := flag.Bool("verify-semantics", false, "differentially execute the module before and after adaptation and run the strict conformance gate (miscompile = exit 1)")
	replay := flag.String("replay", "", "re-execute a quarantine repro bundle and report whether its failure reproduces")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	rep, err := core.Adapt(m, core.Options{TopFunc: *top})
	if err != nil {
		fatal(err)
	}
	if *verify {
		verifySemantics(src, m, *top)
	}
	if *check {
		if vs := hls.Check(m); len(vs) > 0 {
			fmt.Fprintln(os.Stderr, "hls-adaptor: WARNING: result still violates the gate:")
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
		}
	}
	if *report {
		fmt.Fprintf(os.Stderr, "hls-adaptor: %d fixes applied\n%s", rep.Total(), rep)
	}
	if *runLint {
		if ds := lint.Module(m, lint.Options{}); len(ds) > 0 {
			fmt.Fprintf(os.Stderr, "hls-adaptor: lint report:\n%s", ds.Text())
		}
	}
	fmt.Print(m.Print())
}

// verifySemantics differentially executes the pristine input (re-parsed
// from src) against the adapted module on identical deterministic buffers,
// then runs the strict conformance gate on the adapted module. A
// divergence or a conformance diagnostic is fatal (exit 1); a module the
// oracle cannot set up — no recoverable static shapes, an op the
// interpreter lacks — is an oracle limitation, reported as a warning.
func verifySemantics(src string, adapted *llvm.Module, topFlag string) {
	topFn := resolveTop(adapted, topFlag)
	if topFn == nil {
		fmt.Fprintln(os.Stderr, "hls-adaptor: verify-semantics: cannot resolve the top function; skipping")
		return
	}
	pristine, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	shapes, err := oracle.ShapesOf(topFn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hls-adaptor: verify-semantics: oracle limitation:", err)
		return
	}
	h, err := oracle.NewFromLLVM(pristine, topFn.Name, shapes)
	if err != nil {
		if oracle.IsMiscompile(err) {
			fatal(fmt.Errorf("verify-semantics: input module faults under execution: %w", err))
		}
		fmt.Fprintln(os.Stderr, "hls-adaptor: verify-semantics: oracle limitation:", err)
		return
	}
	if err := h.CheckLLVM(adapted); err != nil {
		if oracle.IsMiscompile(err) {
			fatal(fmt.Errorf("verify-semantics: MISCOMPILE: adaptation changed results: %w", err))
		}
		fmt.Fprintln(os.Stderr, "hls-adaptor: verify-semantics: oracle limitation:", err)
		return
	}
	if ds := hls.Conformance(adapted); len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "hls-adaptor: verify-semantics: conformance gate:\n%s", ds.Text())
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hls-adaptor: verify-semantics: adapted module matches the input (and clears the conformance gate)")
}

// resolveTop mirrors the adaptor's own top-function resolution: explicit
// name, else the hls.top attribute, else the only function in the module.
func resolveTop(m *llvm.Module, name string) *llvm.Function {
	if name != "" {
		return m.FindFunc(name)
	}
	for _, f := range m.Funcs {
		if _, ok := f.Attrs["hls.top"]; ok {
			return f
		}
	}
	if len(m.Funcs) == 1 {
		return m.Funcs[0]
	}
	return nil
}

// runReplay re-executes a repro bundle through the bisector: the recorded
// input MLIR replays through the recorded flow kind with isolation,
// verify-each, and per-pass snapshots, so a reproducing failure is pinned
// again from scratch rather than trusted from the bundle.
func runReplay(path string) int {
	b, err := resilience.ReadBundle(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hls-adaptor: replay:", err)
		return resilience.ReplayExitUnusable
	}
	if b.InputMLIR == "" {
		fmt.Fprintln(os.Stderr, "hls-adaptor: replay: bundle has no input MLIR")
		return resilience.ReplayExitUnusable
	}
	var d flow.Directives
	if len(b.Directives) > 0 {
		if err := json.Unmarshal(b.Directives, &d); err != nil {
			fmt.Fprintln(os.Stderr, "hls-adaptor: replay: bad directives:", err)
			return resilience.ReplayExitUnusable
		}
	}
	tgt := hls.DefaultTarget()
	if len(b.Target) > 0 {
		if err := json.Unmarshal(b.Target, &tgt); err != nil {
			fmt.Fprintln(os.Stderr, "hls-adaptor: replay: bad target:", err)
			return resilience.ReplayExitUnusable
		}
	}
	if _, err := mlirparser.Parse(b.InputMLIR); err != nil {
		fmt.Fprintln(os.Stderr, "hls-adaptor: replay: bundle input does not parse:", err)
		return resilience.ReplayExitUnusable
	}
	build := func() *mlir.Module {
		m, err := mlirparser.Parse(b.InputMLIR)
		if err != nil {
			return nil
		}
		return m
	}
	fmt.Fprintf(os.Stderr, "hls-adaptor: replaying %s (%s flow, top %s)\n", b.Label, b.Flow, b.Top)
	fmt.Fprintf(os.Stderr, "hls-adaptor: recorded failure: %v\n", &b.Failure)
	// Re-arm the bundle's recorded corruption; Bisect itself forces the
	// semantic oracle on for miscompile-kind failures.
	nb := flow.Bisect(build, b.Flow, b.Label, b.Top, d, tgt,
		flow.Options{InjectMiscompile: b.Inject}, &b.Failure)
	if !nb.Reproduced {
		fmt.Fprintln(os.Stderr, "hls-adaptor: replay ran clean — failure did not reproduce")
		return resilience.ReplayExitClean
	}
	fmt.Fprintf(os.Stderr, "hls-adaptor: reproduced at %s/%s: %v\n",
		nb.Failure.Stage, nb.Failure.Pass, &nb.Failure)
	if nb.Failure.Stage != b.Failure.Stage || nb.Failure.Pass != b.Failure.Pass {
		fmt.Fprintf(os.Stderr, "hls-adaptor: note: bundle recorded %s/%s\n",
			b.Failure.Stage, b.Failure.Pass)
	}
	if nb.SnapshotIR != "" {
		fmt.Print(nb.SnapshotIR)
	}
	return resilience.ReplayExitReproduced
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hls-adaptor:", err)
	os.Exit(1)
}

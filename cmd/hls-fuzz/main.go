// Command hls-fuzz runs a budgeted generative differential-fuzzing
// campaign: seeded kgen kernels (random-but-well-defined affine loop
// nests with directive configurations sampled from the DSE space) are
// run through both flows under the semantic oracle; every deterministic
// failure is auto-bisected into a quarantine repro bundle, delta-reduced
// to a minimal kernel that still fails the same way, and the reduced
// bundle is quarantined next to the original (…-reduced.json).
//
// Usage:
//
//	hls-fuzz [-seed N] [-count N] [-budget 30s] [-flows adaptor,cxx]
//	         [-quarantine DIR] [-workers N] [-no-reduce]
//	         [-inject-miscompile stage/pass]
//
// The campaign stops at -count kernels or when -budget elapses,
// whichever comes first. Determinism: the kernel stream is a pure
// function of -seed, so a failing campaign is re-runnable bit-for-bit
// (budget permitting) and any finding is pinned by its seed.
//
// -inject-miscompile arms a deterministic IR corruption after the named
// unit in every job — the self-test proving the whole
// find→bisect→reduce→quarantine pipeline works end to end.
//
// Exit codes: 0 campaign clean, 1 findings were quarantined, 2 the
// campaign itself could not run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/reduce"
	"repro/internal/resilience"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "base seed; kernel i uses seed+i")
	count := flag.Int("count", 0, "kernel budget (0 = until -budget elapses)")
	budget := flag.Duration("budget", 30*time.Second, "wall-clock budget for the campaign")
	flows := flag.String("flows", "adaptor,cxx", "comma-separated flow kinds to differentially test")
	qdir := flag.String("quarantine", "quarantine", "directory for repro bundles")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	noReduce := flag.Bool("no-reduce", false, "skip delta-reduction of findings")
	inject := flag.String("inject-miscompile", "", "arm a deterministic corruption after this stage/pass in every job (campaign self-test)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-job timeout")
	verbose := flag.Bool("v", false, "log every kernel")
	flag.Parse()

	var kinds []engine.Kind
	for _, f := range strings.Split(*flows, ",") {
		switch strings.TrimSpace(f) {
		case "adaptor":
			kinds = append(kinds, engine.KindAdaptor)
		case "cxx":
			kinds = append(kinds, engine.KindCxx)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "hls-fuzz: unknown flow kind %q\n", f)
			return 2
		}
	}
	if len(kinds) == 0 {
		fmt.Fprintln(os.Stderr, "hls-fuzz: no flows selected")
		return 2
	}
	if *count <= 0 && *budget <= 0 {
		fmt.Fprintln(os.Stderr, "hls-fuzz: need -count or a positive -budget")
		return 2
	}

	eng := engine.New(engine.Options{
		Workers:         *workers,
		ContinueOnError: true,
		Timeout:         *timeout,
		Quarantine:      *qdir,
		MiscompileHook: func(engine.Job) string {
			return *inject
		},
	})

	deadline := time.Now().Add(*budget)
	ctx := context.Background()
	tgt := hls.DefaultTarget()
	const chunk = 32

	var kernels, runs, findings, reducedOK int
	kindCount := map[resilience.FailureKind]int{}
	next := *seed
	for {
		if *count > 0 && kernels >= *count {
			break
		}
		if *budget > 0 && !time.Now().Before(deadline) {
			break
		}
		n := chunk
		if *count > 0 && *count-kernels < n {
			n = *count - kernels
		}
		var jobs []engine.Job
		for i := 0; i < n; i++ {
			k := kgen.Generate(next, kgen.Config{})
			next++
			kernels++
			if *verbose {
				fmt.Fprintf(os.Stderr, "hls-fuzz: %s [%s]\n", k.Name, k.DirectiveLabel)
			}
			for _, kind := range kinds {
				jobs = append(jobs, engine.Job{
					Label:           fmt.Sprintf("%s %s [%s]", k.Name, kind, k.DirectiveLabel),
					Kind:            kind,
					Build:           k.Build,
					Top:             k.Name,
					Directives:      k.Directives,
					Target:          tgt,
					VerifySemantics: true,
				})
			}
		}
		results, err := eng.Run(ctx, jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hls-fuzz: engine:", err)
			return 2
		}
		runs += len(results)
		for _, r := range results {
			if r.Err == nil {
				continue
			}
			if resilience.Transient(r.Err) {
				fmt.Fprintf(os.Stderr, "hls-fuzz: transient: %s: %v\n", r.Label, r.Err)
				continue
			}
			findings++
			if r.Failure != nil {
				kindCount[r.Failure.Kind]++
			}
			fmt.Fprintf(os.Stderr, "hls-fuzz: FINDING %s: %v\n", r.Label, r.Err)
			if r.BundlePath == "" {
				continue
			}
			fmt.Fprintf(os.Stderr, "hls-fuzz:   quarantined: %s\n", r.BundlePath)
			if *noReduce {
				continue
			}
			if path, red, err := reduceBundle(*qdir, r.BundlePath); err != nil {
				fmt.Fprintf(os.Stderr, "hls-fuzz:   reduce failed: %v\n", err)
			} else {
				reducedOK++
				fmt.Fprintf(os.Stderr, "hls-fuzz:   reduced %d->%d ops, %d->%d loops (%d steps): %s\n",
					red.Orig.Ops, red.Final.Ops, red.Orig.Loops, red.Final.Loops, red.Steps, path)
			}
		}
	}

	fmt.Fprintf(os.Stderr, "hls-fuzz: %d kernels, %d flow runs, %d findings, %d reduced\n",
		kernels, runs, findings, reducedOK)
	for kind, c := range kindCount {
		fmt.Fprintf(os.Stderr, "hls-fuzz:   %s: %d\n", kind, c)
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// reduceBundle minimizes one quarantined bundle and writes the reduced
// bundle next to it.
func reduceBundle(qdir, path string) (string, reduce.Result, error) {
	b, err := resilience.ReadBundle(path)
	if err != nil {
		return "", reduce.Result{}, err
	}
	nb, res, err := reduce.Bundle(b, reduce.Options{})
	if err != nil {
		return "", res, err
	}
	out, err := resilience.WriteBundle(qdir, nb)
	return out, res, err
}

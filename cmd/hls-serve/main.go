// Command hls-serve runs the compile-service daemon: an HTTP/JSON front
// end over the flow-evaluation engine with a shared persistent result
// store, per-client fair admission with load shedding, in-flight request
// deduplication, per-flow circuit breakers, and graceful drain on
// SIGTERM. Multiple daemons and CLIs may point at the same -store
// directory; every record is digest-verified, so a corrupted file is
// quarantined and recomputed, never served.
//
// Usage:
//
//	hls-serve -store ./hls-store                   # defaults: :8080
//	hls-serve -addr 127.0.0.1:9000 -slots 4
//	hls-dse -kernel gemm -server http://127.0.0.1:8080
//
// Endpoints: POST /v1/eval, POST /v1/sweep (NDJSON stream), GET
// /healthz, /readyz, /stats.
//
// Exit codes: 0 clean shutdown (drain completed); 1 startup or serve
// failure; 2 drain timed out and in-flight work was abandoned (the
// pending journal re-admits it on the next start).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	store := flag.String("store", "hls-store", "shared store directory (results, incremental units, pending journal)")
	workers := flag.Int("workers", 0, "engine workers per evaluation batch (0 = GOMAXPROCS)")
	slots := flag.Int("slots", 0, "concurrently admitted requests (0 = default 2)")
	queue := flag.Int("queue", 0, "per-client queue depth before shedding 429s (0 = default 8)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = 2m)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive pass failures that open a flow's circuit breaker (0 = default 5, negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open interval before the breaker probes the flow again (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work before abandoning it")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		StoreDir:         *store,
		Workers:          *workers,
		Slots:            *slots,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hls-serve listening on http://%s (store %s)\n", ln.Addr(), *store)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "hls-serve: %s: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	_ = hs.Shutdown(ctx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "hls-serve: drain timed out; pending journal will re-admit unfinished work")
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "hls-serve: drained cleanly")
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "hls-serve:", err)
	os.Exit(1)
}

package main_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke builds the real binary, boots it on an ephemeral port,
// round-trips an evaluation over HTTP, and checks SIGTERM drains to exit
// code 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "hls-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store", filepath.Join(tmp, "store"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address once listening.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if base == "" {
		t.Fatal("daemon never printed its listening line")
	}
	// Drain remaining output so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"kernel": "gemm", "size": "MINI"})
	resp, err = http.Post(base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eval struct {
		Report *struct {
			LatencyCycles int64 `json:"latency_cycles"`
		} `json:"report"`
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eval); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || eval.Report == nil {
		t.Fatalf("eval: status %d, %+v", resp.StatusCode, eval)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// Command hls-reduce delta-minimizes a failing input while preserving an
// interestingness predicate: point it at a quarantine repro bundle, an
// .mlir kernel, or a .c source, and it shrinks the input as far as the
// predicate allows, re-verifying after every candidate step.
//
// Usage:
//
//	hls-reduce -bundle repro-….json [-o DIR]        # reduce a repro bundle
//	hls-reduce input.mlir -top NAME [predicates]    # reduce raw MLIR
//	hls-reduce input.c -match TEXT                  # line-ddmin a C source
//
// Bundle mode re-arms everything the bundle records (flow kind,
// directives, target, miscompile injection), reduces the input MLIR and
// the directive set, re-bisects, and writes a new bundle with Reduction
// provenance (…-reduced.json) next to the original (or into -o DIR).
//
// MLIR mode builds the predicate from flags:
//
//	-kind K           failure kind that must be preserved
//	                  (panic|error|verify|timeout|miscompile|injected;
//	                  empty = any failure)
//	-stage S -pass P  pin the failing pipeline unit (default: any)
//	-diag-check NAME  failure message must contain this diagnostic
//	                  check name (lint/conformance rule identity)
//	-flow F           pipeline to run: adaptor (default), cxx, raw
//	-directives JSON  flow.Directives JSON to run under (default none)
//	-inject-miscompile stage/pass   arm deterministic corruption
//
// C mode compiles the source with the cxx frontend and keeps any line
// subset whose compilation error still contains -match (or still fails
// at all when -match is empty).
//
// Exit codes: 0 reduced output written, 1 the input is not interesting
// under the predicate or could not be processed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cfront"
	"repro/internal/flow"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/reduce"
	"repro/internal/resilience"
)

func main() {
	os.Exit(run())
}

func run() int {
	bundle := flag.String("bundle", "", "quarantine repro bundle to reduce")
	out := flag.String("o", "", "output path (bundle mode: directory; file modes: path, default stdout)")
	top := flag.String("top", "", "top function (default: first function in the module)")
	kind := flag.String("kind", "", "failure kind to preserve (empty = any failure)")
	stage := flag.String("stage", "", "failing stage to preserve")
	pass := flag.String("pass", "", "failing pass to preserve")
	diagCheck := flag.String("diag-check", "", "diagnostic check name the failure must mention")
	flowKind := flag.String("flow", "adaptor", "flow to run: adaptor, cxx, raw")
	directives := flag.String("directives", "", "flow.Directives JSON to run under")
	inject := flag.String("inject-miscompile", "", "arm deterministic corruption after this stage/pass")
	match := flag.String("match", "", "C mode: error text the failure must contain")
	maxIters := flag.Int("max-iters", 0, "cap on reduction passes (0 = default)")
	flag.Parse()
	// The documented spelling puts the input file first (`hls-reduce
	// in.mlir -kind …`), but the flag package stops at the first
	// positional argument — re-parse the remainder so trailing predicate
	// flags are honored rather than silently dropped.
	input := flag.Arg(0)
	if flag.NArg() > 1 {
		flag.CommandLine.Parse(flag.Args()[1:])
	}

	if *bundle != "" {
		return runBundle(*bundle, *out, *maxIters)
	}
	if input == "" {
		fmt.Fprintln(os.Stderr, "hls-reduce: need -bundle or an input file")
		return 1
	}
	src, err := os.ReadFile(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		return 1
	}
	if strings.HasSuffix(input, ".c") || strings.HasSuffix(input, ".cpp") {
		return runC(string(src), *match, *top, *out)
	}
	return runMLIR(string(src), mlirConfig{
		top: *top, kind: *kind, stage: *stage, pass: *pass,
		diagCheck: *diagCheck, flow: *flowKind, directives: *directives,
		inject: *inject, maxIters: *maxIters, out: *out,
	})
}

func runBundle(path, outDir string, maxIters int) int {
	b, err := resilience.ReadBundle(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		return 1
	}
	nb, res, err := reduce.Bundle(b, reduce.Options{MaxIters: maxIters})
	if err != nil {
		if errors.Is(err, reduce.ErrNotInteresting) {
			fmt.Fprintln(os.Stderr, "hls-reduce: bundle does not reproduce its recorded failure kind; nothing to reduce")
		} else {
			fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		}
		return 1
	}
	if outDir == "" {
		outDir = filepath.Dir(path)
	}
	written, err := resilience.WriteBundle(outDir, nb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "hls-reduce: %d->%d ops, %d->%d loops, %d->%d stores in %d steps (%d candidates tried)\n",
		res.Orig.Ops, res.Final.Ops, res.Orig.Loops, res.Final.Loops,
		res.Orig.Stores, res.Final.Stores, res.Steps, res.Tried)
	fmt.Println(written)
	return 0
}

type mlirConfig struct {
	top, kind, stage, pass, diagCheck, flow, directives, inject, out string
	maxIters                                                         int
}

func runMLIR(src string, c mlirConfig) int {
	topFn := c.top
	if topFn == "" {
		m, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hls-reduce: input does not parse:", err)
			return 1
		}
		fs := m.Funcs()
		if len(fs) == 0 {
			fmt.Fprintln(os.Stderr, "hls-reduce: module has no functions")
			return 1
		}
		topFn = mlir.FuncName(fs[0])
	}
	var d flow.Directives
	if c.directives != "" {
		if err := json.Unmarshal([]byte(c.directives), &d); err != nil {
			fmt.Fprintln(os.Stderr, "hls-reduce: -directives:", err)
			return 1
		}
	}
	oracle := reduce.FlowOracle{
		Flow:       c.flow,
		Top:        topFn,
		Directives: d,
		Opts: flow.Options{
			InjectMiscompile: c.inject,
			VerifySemantics:  c.inject != "" || c.kind == string(resilience.KindMiscompile),
		},
	}
	m := reduce.Match{
		Kind:      resilience.FailureKind(c.kind),
		Stage:     c.stage,
		Pass:      c.pass,
		DiagCheck: c.diagCheck,
	}
	res, err := reduce.MLIR(src, oracle.Keep(m), reduce.Options{MaxIters: c.maxIters})
	if err != nil {
		if errors.Is(err, reduce.ErrNotInteresting) {
			fmt.Fprintln(os.Stderr, "hls-reduce: input is not interesting under the predicate; nothing to reduce")
		} else {
			fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "hls-reduce: %d->%d ops, %d->%d loops in %d steps (%d candidates tried)\n",
		res.Orig.Ops, res.Final.Ops, res.Orig.Loops, res.Final.Loops, res.Steps, res.Tried)
	return emit(res.MLIR, c.out)
}

// runC line-minimizes a C source against the cxx frontend: interesting =
// compilation fails and the error mentions -match.
func runC(src, match, top, out string) int {
	keep := func(s string) bool {
		_, err := cfront.Compile(s, cfront.Options{Top: top})
		if err == nil {
			return false
		}
		return match == "" || strings.Contains(err.Error(), match)
	}
	red, steps, tried := reduce.Lines(src, keep)
	if steps == 0 && !keep(src) {
		fmt.Fprintln(os.Stderr, "hls-reduce: input is not interesting under the predicate; nothing to reduce")
		return 1
	}
	fmt.Fprintf(os.Stderr, "hls-reduce: %d steps (%d candidates tried)\n", steps, tried)
	return emit(red, out)
}

func emit(text, out string) int {
	if !strings.HasSuffix(text, "\n") {
		text += "\n"
	}
	if out == "" {
		fmt.Print(text)
		return 0
	}
	if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hls-reduce:", err)
		return 1
	}
	return 0
}

// custom-kernel: the textual-interchange path. Parses a hand-written MLIR
// kernel (a dot-product accumulator with an explicit affine access map and
// HLS directives), pushes it through the adaptor flow, and prints the
// HLS-readable LLVM IR a downstream toolchain would consume.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm/interp"
	"repro/internal/mlir/parser"
)

const kernelSrc = `
module {
  func.func @blur(%arg0: memref<64xf32>, %arg1: memref<64xf32>) {
    affine.for %0 = 1 to 63 step 1 {
      %1 = affine.load %arg0[%0] map affine_map<(d0) -> ((d0 - 1))> : memref<64xf32>
      %2 = affine.load %arg0[%0] : memref<64xf32>
      %3 = affine.load %arg0[%0] map affine_map<(d0) -> ((d0 + 1))> : memref<64xf32>
      %4 = arith.addf %1, %2 : f32
      %5 = arith.addf %4, %3 : f32
      %6 = arith.constant 0.333333343 : f32
      %7 = arith.mulf %5, %6 : f32
      affine.store %7, %arg1[%0] : memref<64xf32>
    } {hls.pipeline, hls.ii = 1}
    func.return
  }
}
`

func main() {
	m, err := parser.Parse(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== parsed MLIR (round-tripped) ===")
	fmt.Print(m.Print())

	res, err := flow.AdaptorFlow(m, "blur", flow.Directives{}, hls.DefaultTarget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== HLS-readable LLVM IR after the adaptor ===")
	fmt.Print(res.LLVM.Print())
	fmt.Println("\n=== synthesis ===")
	fmt.Println(res.Report)

	// Execute the adapted IR.
	in := interp.NewMem(64 * 4)
	out := interp.NewMem(64 * 4)
	for i := 0; i < 64; i++ {
		in.SetFloat32(i, float32(i))
	}
	if err := flow.Execute(res.LLVM, "blur", []*interp.Mem{in, out}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blur(ramp)[1..5] = %v\n", out.Float32Slice()[1:6])
}

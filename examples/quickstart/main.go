// Quickstart: build a small vector-add kernel at the MLIR level, run it
// through both HLS flows (the paper's direct-IR adaptor flow and the
// baseline HLS-C++ flow), verify both compute the same result, and compare
// the synthesis reports.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
)

const n = 32

// buildVecAdd constructs: func @vecadd(%a, %b, %c) { c[i] = a[i] + b[i] }.
func buildVecAdd() *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n}, mlir.F32())
	_, args := m.AddFunc("vecadd", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("vecadd")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		x := b.AffineLoad(args[0], i)
		y := b.AffineLoad(args[1], i)
		b.AffineStore(b.AddF(x, y), args[2], i)
	})
	b.Return()
	return m
}

func main() {
	directives := flow.Directives{Pipeline: true, II: 1}
	tgt := hls.DefaultTarget()

	fmt.Println("=== MLIR input ===")
	fmt.Print(buildVecAdd().Print())

	// The paper's flow: MLIR -> LLVM IR -> adaptor -> synthesis.
	ares, err := flow.AdaptorFlow(buildVecAdd(), "vecadd", directives, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Adaptor flow ===")
	fmt.Printf("adaptor applied %d fixes:\n%s\n", ares.Adaptor.Total(), ares.Adaptor)
	fmt.Println(ares.Report)

	// The baseline: MLIR -> HLS C++ -> C frontend -> synthesis.
	cres, err := flow.CxxFlow(buildVecAdd(), "vecadd", directives, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== HLS-C++ flow ===")
	fmt.Println(cres.Report)

	// Functional check (the co-simulation stand-in): run both flows' final
	// IR on the same inputs.
	mkMems := func() []*interp.Mem {
		a := interp.NewMem(n * 4)
		b := interp.NewMem(n * 4)
		c := interp.NewMem(n * 4)
		for i := 0; i < n; i++ {
			a.SetFloat32(i, float32(i))
			b.SetFloat32(i, float32(2*i))
		}
		return []*interp.Mem{a, b, c}
	}
	am, cm := mkMems(), mkMems()
	if err := flow.Execute(ares.LLVM, "vecadd", am); err != nil {
		log.Fatal(err)
	}
	if err := flow.Execute(cres.LLVM, "vecadd", cm); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float32(3 * i)
		if am[2].Float32Slice()[i] != want || cm[2].Float32Slice()[i] != want {
			log.Fatalf("mismatch at %d", i)
		}
	}
	fmt.Println("functional check: both flows compute c[i] = a[i] + b[i]  OK")
	fmt.Printf("latency: adaptor=%d cycles, hls-c++=%d cycles\n",
		ares.Report.LatencyCycles, cres.Report.LatencyCycles)
}

// stencil-pipeline: a design-space exploration study on the Jacobi-2D
// stencil. Sweeps pipelining and array partition factors through the adaptor
// flow and prints how latency and BRAM banks respond — the kind of
// MLIR-level DSE the direct-IR path makes cheap because no C++ re-parse sits
// in the loop.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
)

func main() {
	k := polybench.Get("jacobi2d")
	size, err := k.SizeOf("SMALL")
	if err != nil {
		log.Fatal(err)
	}
	tgt := hls.DefaultTarget()

	type point struct {
		name string
		d    flow.Directives
	}
	sweep := []point{
		{"baseline", flow.Directives{}},
		{"pipeline II=1", flow.Directives{Pipeline: true, II: 1}},
		{"pipeline + cyclic x2", flow.Directives{Pipeline: true, II: 1,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0}}},
		{"pipeline + cyclic x4", flow.Directives{Pipeline: true, II: 1,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 4, Dim: 0}}},
		{"pipeline + cyclic x8", flow.Directives{Pipeline: true, II: 1,
			Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 8, Dim: 0}}},
	}

	fmt.Printf("jacobi2d %s: adaptor-flow design-space sweep\n\n", size.Name)
	fmt.Printf("%-22s %10s %8s %6s %6s %8s\n", "configuration", "latency", "speedup", "II", "BRAM", "LUT")
	var base int64
	for _, pt := range sweep {
		res, err := flow.AdaptorFlow(k.Build(size), k.Name, pt.d, tgt)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Report.LatencyCycles
		}
		ii := "-"
		for _, l := range res.Report.Loops {
			if l.Pipelined {
				ii = fmt.Sprintf("%d", l.II)
			}
		}
		fmt.Printf("%-22s %10d %7.2fx %6s %6d %8d\n", pt.name,
			res.Report.LatencyCycles,
			float64(base)/float64(res.Report.LatencyCycles),
			ii, res.Report.BRAM, res.Report.LUT)
	}

	fmt.Println("\nthe partition sweep buys ports for the 5-point neighborhood until")
	fmt.Println("the stencil becomes port-bound on the write side.")
}

// gemm-accelerator: the paper's canonical workload. Builds the PolyBench
// GEMM kernel, applies an HLS optimization recipe (innermost pipelining,
// cyclic array partitioning), and prints a side-by-side comparison of the
// adaptor flow and the HLS-C++ flow: the gate violations the adaptor fixed,
// the generated C++ the baseline re-parses, and both synthesis reports.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
)

func main() {
	k := polybench.Get("gemm")
	size, err := k.SizeOf("SMALL")
	if err != nil {
		log.Fatal(err)
	}
	directives := flow.Directives{
		Pipeline:  true,
		II:        1,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0},
	}
	tgt := hls.DefaultTarget()

	// Show why the direct path needs the adaptor at all.
	violations, _, err := flow.RawFlow(k.Build(size), k.Name, directives)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Raw mlir-translate output: %d HLS-gate violations ===\n", len(violations))
	for i, v := range violations {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(violations)-6)
			break
		}
		fmt.Println("  ", v)
	}

	ares, err := flow.AdaptorFlow(k.Build(size), k.Name, directives, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Adaptor flow: %d fixes close the gap ===\n%s\n", ares.Adaptor.Total(), ares.Adaptor)
	fmt.Println(ares.Report)

	cres, err := flow.CxxFlow(k.Build(size), k.Name, directives, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Baseline flow: generated HLS C++ (excerpt) ===")
	src := cres.CSource
	if len(src) > 900 {
		src = src[:900] + "\n  ...\n"
	}
	fmt.Println(src)
	fmt.Println(cres.Report)

	fmt.Printf("=== Comparison ===\n")
	fmt.Printf("latency : adaptor=%d  hls-c++=%d  (ratio %.3f)\n",
		ares.Report.LatencyCycles, cres.Report.LatencyCycles,
		float64(ares.Report.LatencyCycles)/float64(cres.Report.LatencyCycles))
	fmt.Printf("DSP     : adaptor=%d  hls-c++=%d\n", ares.Report.DSP, cres.Report.DSP)
	fmt.Printf("BRAM    : adaptor=%d  hls-c++=%d\n", ares.Report.BRAM, cres.Report.BRAM)
	fmt.Printf("compile : adaptor=%v  hls-c++=%v\n", ares.Total, cres.Total)
}

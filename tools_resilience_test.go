package repro_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// exitCode extracts a tool's exit status (0 on success, -1 when the
// process did not run at all).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestCLIDseExitCodesAndQuarantine covers the hls-dse exit-code contract
// — 0 clean, 2 completed-with-degradation, 1 hard failure — and the
// quarantine/replay round trip between hls-dse and hls-adaptor.
func TestCLIDseExitCodesAndQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "hls-dse", "hls-adaptor")

	// Clean sweep: exit 0.
	out, errOut, err := runTool(t, tools["hls-dse"], "", "-kernel", "gemm", "-size", "MINI")
	if code := exitCode(err); code != 0 {
		t.Fatalf("clean sweep exit=%d, want 0\n%s", code, errOut)
	}
	if !strings.Contains(out, "Pareto frontier") {
		t.Fatalf("frontier missing:\n%s", out)
	}

	// Degraded sweep: an injected direct-path panic plus -fallback means
	// the sweep completes but one point is the C++ baseline's — exit 2,
	// marked in the listing, with a repro bundle in quarantine.
	qdir := t.TempDir()
	out, errOut, err = runTool(t, tools["hls-dse"], "", "-kernel", "gemm", "-size", "MINI",
		"-fallback", "-quarantine", qdir, "-inject-panic", "base:adaptor/adaptor")
	if code := exitCode(err); code != 2 {
		t.Fatalf("degraded sweep exit=%d, want 2\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "degraded") {
		t.Errorf("degraded mark missing:\n%s", out)
	}
	bundles, err := filepath.Glob(filepath.Join(qdir, "repro-*.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("want exactly one quarantine bundle, got %v (%v)", bundles, err)
	}

	// Replaying that bundle without the chaos hook runs clean: exit 2 and
	// an explicit did-not-reproduce message (the failure was injected, not
	// in the IR).
	_, errOut, err = runTool(t, tools["hls-adaptor"], "", "-replay", bundles[0])
	if code := exitCode(err); code != 2 {
		t.Fatalf("replay of injected-fault bundle exit=%d, want 2\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "did not reproduce") {
		t.Errorf("replay verdict missing:\n%s", errOut)
	}

	// Hard failure: a 1ns per-configuration timeout kills every point, so
	// nothing evaluates — exit 1.
	_, errOut, err = runTool(t, tools["hls-dse"], "", "-kernel", "gemm", "-size", "MINI",
		"-timeout", "1ns")
	if code := exitCode(err); code != 1 {
		t.Fatalf("hard failure exit=%d, want 1\n%s", code, errOut)
	}
}

// TestCLIDseJournalResume: a sweep journaled to disk resumes — the second
// run evaluates nothing and prints the identical Pareto frontier.
func TestCLIDseJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "hls-dse")
	jp := filepath.Join(t.TempDir(), "sweep.jsonl")

	first, errOut, err := runTool(t, tools["hls-dse"], "", "-kernel", "gemm", "-size", "MINI",
		"-journal", jp)
	if err != nil {
		t.Fatalf("journaled sweep: %v\n%s", err, errOut)
	}
	if fi, err := os.Stat(jp); err != nil || fi.Size() == 0 {
		t.Fatalf("journal not written: %v", err)
	}
	second, errOut, err := runTool(t, tools["hls-dse"], "", "-kernel", "gemm", "-size", "MINI",
		"-journal", jp)
	if err != nil {
		t.Fatalf("resumed sweep: %v\n%s", err, errOut)
	}
	if !strings.Contains(second, "resumed from") {
		t.Errorf("resume not reported:\n%s", second)
	}
	cut := func(s string) string {
		i := strings.Index(s, "Pareto frontier")
		if i < 0 {
			t.Fatalf("frontier missing:\n%s", s)
		}
		return s[i:]
	}
	if cut(first) != cut(second) {
		t.Errorf("resumed frontier differs:\n--- first ---\n%s--- second ---\n%s",
			cut(first), cut(second))
	}
}

// TestCLIAdaptorReplayReproduces: a bundle whose failure is genuinely in
// the recorded input (top function missing, so synthesis fails) reproduces
// under replay — exit 0 with the failure re-pinned — and a missing bundle
// file is a hard error.
func TestCLIAdaptorReplayReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "hls-adaptor")
	dir := t.TempDir()
	path, err := resilience.WriteBundle(dir, &resilience.Bundle{
		Label:     "axpy bad-top",
		Flow:      "adaptor",
		Top:       "nope",
		InputMLIR: axpyMLIR,
		Failure: *resilience.NewFailure("synthesis", "synthesis", resilience.KindError,
			errors.New("recorded failure")),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, errOut, err := runTool(t, tools["hls-adaptor"], "", "-replay", path)
	if code := exitCode(err); code != 0 {
		t.Fatalf("reproducing replay exit=%d, want 0\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "reproduced at synthesis/synthesis") {
		t.Errorf("failure not re-pinned:\n%s", errOut)
	}

	_, errOut, err = runTool(t, tools["hls-adaptor"], "", "-replay", filepath.Join(dir, "missing.json"))
	if code := exitCode(err); code != 1 {
		t.Fatalf("missing bundle exit=%d, want 1\n%s", code, errOut)
	}
}

// Package repro_test holds the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (regenerating the same rows via the
// experiments package and reporting the headline metrics), plus
// micro-benchmarks of the pipeline phases.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"flag"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/cfront"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm/interp"
	llparser "repro/internal/llvm/parser"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	mlirparser "repro/internal/mlir/parser"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/translate"
)

func cfg() experiments.Config { return experiments.Default() }

// reportTable re-renders one experiment per iteration and reports its row
// count so regressions in experiment coverage surface in benchmarks.
func reportTable(b *testing.B, fn func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := fn(cfg())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable1Characteristics(b *testing.B) { reportTable(b, experiments.Table1) }

func BenchmarkTable2AdaptorFixes(b *testing.B) { reportTable(b, experiments.Table2) }

func BenchmarkTable3Resources(b *testing.B) { reportTable(b, experiments.Table3) }

func BenchmarkTable4CompileTime(b *testing.B) { reportTable(b, experiments.Table4) }

func BenchmarkFig6DirectiveSweep(b *testing.B) { reportTable(b, experiments.Fig6) }

func BenchmarkFig7DetailRetention(b *testing.B) { reportTable(b, experiments.Fig7) }

func BenchmarkFig8DSEFrontier(b *testing.B) {
	cfg := experiments.Default()
	cfg.SizeName = "MINI"
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "pareto-points")
}

// benchPrecheck gates the DSE feasibility pre-check in BenchmarkDSEParallel,
// so CI can benchmark the sweep with and without pruning and publish the
// comparison: go test -bench DSEParallel -precheck.
var benchPrecheck = flag.Bool("precheck", false, "enable the DSE feasibility pre-check in DSE benchmarks")

// BenchmarkDSEParallel sweeps the full DSE space through the evaluation
// engine at increasing worker counts, reporting wall-clock speedup over
// the single-worker (serial) sweep, plus a warm-cache run showing the
// content-addressed cache's effect on repeated exploration. The -precheck
// flag turns on the feasibility pre-check; the pruned-point count is
// reported so on/off runs can be compared directly. jacobi1d is the swept
// kernel: its resource floor gives the pre-check points to prune.
func BenchmarkDSEParallel(b *testing.B) {
	k := polybench.Get("jacobi1d")
	s, err := k.SizeOf("MINI")
	if err != nil {
		b.Fatal(err)
	}
	build := func() *mlir.Module { return k.Build(s) }
	tgt := hls.DefaultTarget()
	base := dse.Options{Precheck: *benchPrecheck}

	// Serial baseline for the speedup metric (median-free, but the sweep
	// is long enough to be stable).
	t0 := time.Now()
	serialRes, err := dse.ExploreWith(build, k.Name, tgt, dse.Options{Workers: 1, Precheck: base.Precheck})
	if err != nil {
		b.Fatal(err)
	}
	serial := time.Since(t0)

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := base
			opts.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := dse.ExploreWith(build, k.Name, tgt, opts); err != nil {
					b.Fatal(err)
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			b.ReportMetric(float64(serial)/float64(perOp), "speedup-vs-serial")
			b.ReportMetric(float64(len(serialRes.Pruned)), "pruned-points")
		})
	}

	b.Run("workers=4/cached", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: 4, Cache: true})
		opts := base
		opts.Engine = eng
		opts.CacheScope = "MINI"
		if _, err := dse.ExploreWith(build, k.Name, tgt, opts); err != nil {
			b.Fatal(err) // warm the cache outside the timed region
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dse.ExploreWith(build, k.Name, tgt, opts); err != nil {
				b.Fatal(err)
			}
		}
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(serial)/float64(perOp), "speedup-vs-serial")
		b.ReportMetric(eng.Stats().HitRate(), "cache-hit-rate")
	})
}

// BenchmarkExperimentsCached regenerates the two optimized-directive
// tables through one cached engine per iteration pair: Table3 populates
// the cache, Table4 (same pairs) is served from it, and later iterations
// hit on everything. The hit rate and the per-iteration wall time are the
// headline metrics.
func BenchmarkExperimentsCached(b *testing.B) {
	eng := engine.New(engine.Options{Workers: 4, Cache: true})
	cfg := experiments.Config{SizeName: "MINI", Target: hls.DefaultTarget(), Engine: eng}
	var rows int
	for i := 0; i < b.N; i++ {
		t3, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t4, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t3.Rows) + len(t4.Rows)
	}
	st := eng.Stats()
	b.ReportMetric(float64(rows), "rows")
	b.ReportMetric(st.HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(st.CacheHits), "cache-hits")
}

// latencyBench reports per-kernel latency cycles of both flows as metrics
// (the series behind Fig 4 / Fig 5).
func latencyBench(b *testing.B, d flow.Directives) {
	for _, k := range polybench.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			s, err := k.SizeOf(cfg().SizeName)
			if err != nil {
				b.Fatal(err)
			}
			var aCycles, cCycles int64
			for i := 0; i < b.N; i++ {
				ares, err := flow.AdaptorFlow(k.Build(s), k.Name, d, cfg().Target)
				if err != nil {
					b.Fatal(err)
				}
				cres, err := flow.CxxFlow(k.Build(s), k.Name, d, cfg().Target)
				if err != nil {
					b.Fatal(err)
				}
				aCycles = ares.Report.LatencyCycles
				cCycles = cres.Report.LatencyCycles
			}
			b.ReportMetric(float64(aCycles), "adaptor-cycles")
			b.ReportMetric(float64(cCycles), "hlscpp-cycles")
			b.ReportMetric(float64(aCycles)/float64(cCycles), "ratio")
		})
	}
}

func BenchmarkFig4BaselineLatency(b *testing.B) {
	latencyBench(b, flow.Directives{})
}

func BenchmarkFig5OptimizedLatency(b *testing.B) {
	latencyBench(b, flow.Directives{Pipeline: true, II: 1,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0}})
}

// --- Phase micro-benchmarks ---

func gemmSmallModuleText(b *testing.B) string {
	b.Helper()
	k := polybench.Get("gemm")
	s, err := k.SizeOf("SMALL")
	if err != nil {
		b.Fatal(err)
	}
	return k.Build(s).Print()
}

func BenchmarkMLIRParse(b *testing.B) {
	src := gemmSmallModuleText(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlirparser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLIRLowering(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	for i := 0; i < b.N; i++ {
		m := k.Build(s)
		if err := lower.AffineToSCF(m); err != nil {
			b.Fatal(err)
		}
		if err := lower.SCFToCF(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslate(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	m := k.Build(s)
	if err := lower.AffineToSCF(m); err != nil {
		b.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(m, translate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptor(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	m := k.Build(s)
	if err := passes.MarkTop("gemm").Run(m); err != nil {
		b.Fatal(err)
	}
	if err := lower.AffineToSCF(m); err != nil {
		b.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		b.Fatal(err)
	}
	lm, err := translate.Translate(m, translate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	text := lm.Print()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := llparser.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Adapt(fresh, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCgenEmit(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	m := k.Build(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cgen.Emit(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFrontend(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	src, err := cgen.Emit(k.Build(s))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfront.Compile(src, cfront.Options{Top: "gemm"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesize(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("SMALL")
	res, err := flow.AdaptorFlow(k.Build(s), "gemm",
		flow.Directives{Pipeline: true, II: 1}, hls.DefaultTarget())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hls.Synthesize(res.LLVM, "gemm", hls.DefaultTarget()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpGemm(b *testing.B) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	res, err := flow.AdaptorFlow(k.Build(s), "gemm", flow.Directives{}, hls.DefaultTarget())
	if err != nil {
		b.Fatal(err)
	}
	bufs := k.NewBuffers(s)
	polybench.Init(bufs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mems := make([]*interp.Mem, len(bufs))
		for j, buf := range bufs {
			mems[j] = interp.NewMem(int64(len(buf)) * 4)
			for x, v := range buf {
				mems[j].SetFloat32(x, v)
			}
		}
		if err := flow.Execute(res.LLVM, "gemm", mems); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowScaling reports how full-flow compile time scales with the
// kernel size (ablation for DESIGN.md's compile-cost discussion).
func BenchmarkFlowScaling(b *testing.B) {
	k := polybench.Get("gemm")
	for _, sz := range []string{"MINI", "SMALL"} {
		sz := sz
		b.Run(sz, func(b *testing.B) {
			s, err := k.SizeOf(sz)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := flow.AdaptorFlow(k.Build(s), "gemm",
					flow.Directives{}, hls.DefaultTarget()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnrollScaling is the ablation for the unroll model: latency as a
// function of the unroll factor through both flows.
func BenchmarkUnrollScaling(b *testing.B) {
	k := polybench.Get("conv2d")
	s, _ := k.SizeOf("SMALL")
	for _, u := range []int{1, 2, 4, 8} {
		u := u
		b.Run("unroll"+strconv.Itoa(u), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := flow.AdaptorFlow(k.Build(s), k.Name,
					flow.Directives{Unroll: u}, hls.DefaultTarget())
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Report.LatencyCycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

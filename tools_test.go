package repro_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const axpyMLIR = `
module {
  func.func @axpy(%arg0: memref<64xf32>, %arg1: memref<64xf32>) {
    %0 = arith.constant 2.0 : f32
    affine.for %1 = 0 to 64 step 1 {
      %2 = affine.load %arg0[%1] : memref<64xf32>
      %3 = arith.mulf %0, %2 : f32
      %4 = affine.load %arg1[%1] : memref<64xf32>
      %5 = arith.addf %3, %4 : f32
      affine.store %5, %arg1[%1] : memref<64xf32>
    }
    func.return
  }
}
`

// buildTools compiles the CLI binaries once into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, msg)
		}
		out[n] = bin
	}
	return out
}

func runTool(t *testing.T, bin string, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

// TestCLIToolsPipeline drives the documented composition end to end:
// mlir-opt | mlir-translate | (vitis-sim fails) | hls-adaptor | vitis-sim.
func TestCLIToolsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "mlir-opt", "mlir-translate", "hls-adaptor", "vitis-sim")

	opted, errOut, err := runTool(t, tools["mlir-opt"], axpyMLIR,
		"-top", "axpy", "-pipeline", "1", "-canonicalize")
	if err != nil {
		t.Fatalf("mlir-opt: %v\n%s", err, errOut)
	}
	if !strings.Contains(opted, "hls.pipeline") {
		t.Fatalf("mlir-opt did not apply the directive:\n%s", opted)
	}

	ll, errOut, err := runTool(t, tools["mlir-translate"], opted)
	if err != nil {
		t.Fatalf("mlir-translate: %v\n%s", err, errOut)
	}
	if !strings.Contains(ll, "llvm.loop.pipeline.enable") {
		t.Fatalf("metadata missing from translated IR:\n%s", ll)
	}

	// vitis-sim must reject the raw IR.
	_, errOut, err = runTool(t, tools["vitis-sim"], ll, "-top", "axpy")
	if err == nil {
		t.Fatal("vitis-sim should reject un-adapted IR")
	}
	if !strings.Contains(errOut, "rejected") {
		t.Fatalf("rejection message missing:\n%s", errOut)
	}

	adapted, report, err := runTool(t, tools["hls-adaptor"], ll)
	if err != nil {
		t.Fatalf("hls-adaptor: %v\n%s", err, report)
	}
	if !strings.Contains(report, "fixes applied") {
		t.Fatalf("adaptor report missing:\n%s", report)
	}
	if !strings.Contains(adapted, "[64 x float]*") {
		t.Fatalf("typed array pointer missing from adapted IR:\n%s", adapted)
	}

	synth, errOut, err := runTool(t, tools["vitis-sim"], adapted, "-top", "axpy")
	if err != nil {
		t.Fatalf("vitis-sim on adapted IR: %v\n%s", err, errOut)
	}
	for _, want := range []string{"Latency:", "pipeline=yes II=1", "Resources:"} {
		if !strings.Contains(synth, want) {
			t.Errorf("synthesis report missing %q:\n%s", want, synth)
		}
	}
}

// TestCLIFlowbenchOneExperiment smoke-tests the experiment driver.
func TestCLIFlowbenchOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "flowbench")
	out, errOut, err := runTool(t, tools["flowbench"], "", "-experiment", "table2", "-size", "MINI")
	if err != nil {
		t.Fatalf("flowbench: %v\n%s", err, errOut)
	}
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "gemm") {
		t.Errorf("flowbench output unexpected:\n%s", out)
	}
}

const badLL = `
define void @bad() {
entry:
  %a = alloca [4 x float]
  %p = getelementptr inbounds [4 x float], ptr %a, i64 0, i64 9
  %v = load float, ptr %p
  ret void
}
`

// TestCLIHLSLint covers the lint tool's contract: exit 0 with an empty
// report on clean IR, exit 1 with deterministic text and JSON diagnostics
// on defective IR, and check filtering via -checks.
func TestCLIHLSLint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "mlir-opt", "mlir-translate", "hls-lint")

	opted, errOut, err := runTool(t, tools["mlir-opt"], axpyMLIR, "-top", "axpy", "-pipeline", "1")
	if err != nil {
		t.Fatalf("mlir-opt: %v\n%s", err, errOut)
	}
	ll, errOut, err := runTool(t, tools["mlir-translate"], opted)
	if err != nil {
		t.Fatalf("mlir-translate: %v\n%s", err, errOut)
	}

	out, errOut, err := runTool(t, tools["hls-lint"], ll)
	if err != nil {
		t.Fatalf("hls-lint on clean IR: %v\n%s", err, errOut)
	}
	if !strings.Contains(out, "0 error(s)") {
		t.Errorf("clean IR should report zero errors:\n%s", out)
	}

	out, _, err = runTool(t, tools["hls-lint"], badLL)
	if err == nil {
		t.Fatalf("hls-lint must exit non-zero on error diagnostics:\n%s", out)
	}
	for _, want := range []string{"error[gep-bounds]", "error[uninit-load]", "2 error(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	out2, _, _ := runTool(t, tools["hls-lint"], badLL)
	if out != out2 {
		t.Error("text report is not deterministic across runs")
	}

	jsonOut, _, err := runTool(t, tools["hls-lint"], badLL, "-json")
	if err == nil {
		t.Fatal("hls-lint -json must still exit non-zero on errors")
	}
	var rep struct {
		Diagnostics []map[string]any `json:"diagnostics"`
		Errors      int              `json:"errors"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, jsonOut)
	}
	if rep.Errors != 2 || len(rep.Diagnostics) != 2 {
		t.Errorf("want 2 error diagnostics, got %d/%d:\n%s", rep.Errors, len(rep.Diagnostics), jsonOut)
	}

	// Restricting to one check must drop the other's findings and exit 1.
	out, _, err = runTool(t, tools["hls-lint"], badLL, "-checks", "gep-bounds")
	if err == nil || strings.Contains(out, "uninit-load") || !strings.Contains(out, "gep-bounds") {
		t.Errorf("-checks filtering wrong (err=%v):\n%s", err, out)
	}

	// Usage errors exit 2.
	_, _, err = runTool(t, tools["hls-lint"], badLL, "-checks", "no-such-check")
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("unknown check should exit 2, got %v", err)
	}
}

// TestCLIToolsFromFiles exercises the file-input path (not just stdin).
func TestCLIToolsFromFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "mlir-opt")
	dir := t.TempDir()
	path := filepath.Join(dir, "axpy.mlir")
	if err := os.WriteFile(path, []byte(axpyMLIR), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, err := runTool(t, tools["mlir-opt"], "", "-unroll", "2", path)
	if err != nil {
		t.Fatalf("mlir-opt file input: %v\n%s", err, errOut)
	}
	// Unrolled by 2: two loads of arg0 appear in the loop body.
	if strings.Count(out, "affine.load %arg0") != 2 {
		t.Errorf("unroll not applied through the CLI:\n%s", out)
	}
}

// TestCLIHLSLintMultiInput covers the multi-input surface: several files and
// a recursed directory in one run (with per-file locations in the text
// report), stdin via "-", -format sarif, and -explain on a finding id.
func TestCLIHLSLintMultiInput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	tools := buildTools(t, "hls-lint")
	dir := t.TempDir()
	sub := filepath.Join(dir, "nested")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.ll")
	nestedPath := filepath.Join(sub, "also_bad.ll")
	for _, p := range []string{badPath, nestedPath} {
		if err := os.WriteFile(p, []byte(badLL), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A directory argument recurses; both copies of the defect are found and
	// attributed to their files.
	out, _, err := runTool(t, tools["hls-lint"], "", dir)
	if err == nil {
		t.Fatalf("defective inputs must exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "4 error(s)") {
		t.Errorf("two defective files carry four errors:\n%s", out)
	}
	for _, p := range []string{badPath, nestedPath} {
		if !strings.Contains(out, p) {
			t.Errorf("text report missing file location %q:\n%s", p, out)
		}
	}

	// Explicit file arguments work too, and stdin stays reachable as "-".
	out2, _, _ := runTool(t, tools["hls-lint"], "", badPath, nestedPath)
	if out != out2 {
		t.Errorf("directory walk and explicit files disagree:\n%s\nvs\n%s", out, out2)
	}
	stdinOut, _, err := runTool(t, tools["hls-lint"], badLL, "-")
	if err == nil || !strings.Contains(stdinOut, "2 error(s)") {
		t.Errorf("stdin via - broken (err=%v):\n%s", err, stdinOut)
	}

	// SARIF output: valid JSON with the expected shape and fingerprints.
	sarifOut, _, err := runTool(t, tools["hls-lint"], "", "-format", "sarif", badPath)
	if err == nil {
		t.Fatal("-format sarif must keep the exit-code contract")
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				Level               string            `json:"level"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sarifOut), &log); err != nil {
		t.Fatalf("-format sarif is not valid JSON: %v\n%s", err, sarifOut)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "hls-lint" {
		t.Errorf("unexpected SARIF envelope:\n%s", sarifOut)
	}
	if len(log.Runs[0].Results) != 2 {
		t.Errorf("want 2 SARIF results, got %d", len(log.Runs[0].Results))
	}

	// -explain: pull an id out of the report and ask for its analysis state.
	id := log.Runs[0].Results[0].PartialFingerprints["hlsLintId"]
	if id == "" {
		t.Fatalf("SARIF results must carry hlsLintId fingerprints:\n%s", sarifOut)
	}
	expOut, _, err := runTool(t, tools["hls-lint"], "", "-explain", id, badPath)
	if err != nil {
		t.Fatalf("-explain on a known id: %v\n%s", err, expOut)
	}
	if !strings.Contains(expOut, id) {
		t.Errorf("-explain output should echo the finding:\n%s", expOut)
	}
	// Unknown ids are usage errors (exit 2).
	_, _, err = runTool(t, tools["hls-lint"], "", "-explain", "ffffffff", badPath)
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("unknown -explain id should exit 2, got %v", err)
	}
}

package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/reduce"
	"repro/internal/resilience"
)

// TestFuzzCampaignEndToEnd is the PR's acceptance criterion as one test:
// an injected miscompile on a kgen-generated kernel is found by
// hls-fuzz, auto-reduced to a kernel with strictly fewer statements and
// loops, and the reduced bundle still reproduces the same PassFailure
// kind via `hls-adaptor -replay`.
func TestFuzzCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI campaign test in short mode")
	}
	tools := buildTools(t, "hls-fuzz", "hls-adaptor")
	qdir := t.TempDir()

	_, errOut, err := runTool(t, tools["hls-fuzz"], "",
		"-seed", "3", "-count", "1", "-flows", "adaptor",
		"-inject-miscompile", "mlir-opt/canonicalize",
		"-quarantine", qdir)
	if code := exitCode(err); code != 1 {
		t.Fatalf("hls-fuzz exit = %d, want 1 (findings)\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "FINDING") {
		t.Fatalf("no finding reported:\n%s", errOut)
	}

	reducedGlob, _ := filepath.Glob(filepath.Join(qdir, "repro-*-reduced.json"))
	if len(reducedGlob) != 1 {
		t.Fatalf("want exactly 1 reduced bundle, got %v\n%s", reducedGlob, errOut)
	}
	origGlob := []string{}
	for _, p := range mustGlob(t, qdir, "repro-*.json") {
		if !strings.HasSuffix(p, "-reduced.json") {
			origGlob = append(origGlob, p)
		}
	}
	if len(origGlob) != 1 {
		t.Fatalf("want exactly 1 original bundle, got %v", origGlob)
	}

	orig, err := resilience.ReadBundle(origGlob[0])
	if err != nil {
		t.Fatal(err)
	}
	red, err := resilience.ReadBundle(reducedGlob[0])
	if err != nil {
		t.Fatal(err)
	}

	// Same failure kind, with provenance chaining reduced -> original.
	if orig.Failure.Kind != resilience.KindMiscompile {
		t.Fatalf("original failure kind = %s, want miscompile", orig.Failure.Kind)
	}
	if red.Failure.Kind != orig.Failure.Kind {
		t.Fatalf("reduced failure kind = %s, want %s", red.Failure.Kind, orig.Failure.Kind)
	}
	if red.Reduced == nil || red.Reduced.FromID != orig.ID() {
		t.Fatalf("reduced bundle provenance = %+v, want FromID %s", red.Reduced, orig.ID())
	}
	if !strings.Contains(filepath.Base(origGlob[0]), string(orig.Failure.Kind)) {
		t.Fatalf("bundle filename lacks failure kind: %s", origGlob[0])
	}

	// Strictly smaller: fewer ops AND no more loops/stores, with at least
	// one of loops/stores strictly reduced or ops strictly reduced.
	so, err := reduce.Measure(orig.InputMLIR)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := reduce.Measure(red.InputMLIR)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Ops >= so.Ops {
		t.Fatalf("reduction did not shrink ops: %d -> %d", so.Ops, sr.Ops)
	}
	if sr.Loops > so.Loops || sr.Stores > so.Stores {
		t.Fatalf("reduction grew structure: loops %d->%d stores %d->%d",
			so.Loops, sr.Loops, so.Stores, sr.Stores)
	}

	// The reduced bundle replays: same failure reproduces, exit 0.
	_, replayErr, err := runTool(t, tools["hls-adaptor"], "", "-replay", reducedGlob[0])
	if code := exitCode(err); code != resilience.ReplayExitReproduced {
		t.Fatalf("replay exit = %d, want %d\n%s", code, resilience.ReplayExitReproduced, replayErr)
	}
	if !strings.Contains(replayErr, "reproduced") {
		t.Fatalf("replay did not report reproduction:\n%s", replayErr)
	}
}

func mustGlob(t *testing.T, dir, pat string) []string {
	t.Helper()
	out, err := filepath.Glob(filepath.Join(dir, pat))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplayExitCodeTable pins the documented replay exit-code contract
// (resilience.ReplayExit*) against the real CLI, one row per code.
func TestReplayExitCodeTable(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI table test in short mode")
	}
	tools := buildTools(t, "hls-adaptor")
	dir := t.TempDir()
	k := kgen.Generate(3, kgen.Config{})
	tgt := hls.DefaultTarget()

	// Reproduced: a bisected injected miscompile.
	opts := flow.Options{InjectMiscompile: "mlir-opt/canonicalize", VerifySemantics: true}
	_, ferr := flow.AdaptorFlowWith(k.Build(), k.Name, k.Directives, tgt, opts)
	if ferr == nil {
		t.Fatal("fixture did not fail")
	}
	repro := flow.Bisect(k.Build, "adaptor", k.Name, k.Name, k.Directives, tgt, opts, ferr)
	if !repro.Reproduced {
		t.Fatalf("fixture bisect did not reproduce: %s", repro.Note)
	}
	reproPath, err := resilience.WriteBundle(dir, repro)
	if err != nil {
		t.Fatal(err)
	}

	// Clean: a healthy kernel with a fabricated recorded failure.
	clean := &resilience.Bundle{
		Label: "clean", Flow: "adaptor", Top: k.Name,
		InputMLIR: k.MLIR,
		Failure: resilience.PassFailure{
			Stage: "mlir-opt", Pass: "canonicalize",
			Kind: resilience.KindPanic, Msg: "fabricated",
		},
	}
	cleanPath, err := resilience.WriteBundle(dir, clean)
	if err != nil {
		t.Fatal(err)
	}

	// Unusable: a bundle with no input IR.
	empty := &resilience.Bundle{Label: "empty", Flow: "adaptor", Top: k.Name,
		Failure: resilience.PassFailure{Kind: resilience.KindError, Msg: "x"}}
	emptyPath, err := resilience.WriteBundle(dir, empty)
	if err != nil {
		t.Fatal(err)
	}

	rows := []struct {
		name string
		path string
		want int
	}{
		{"reproduced", reproPath, resilience.ReplayExitReproduced},
		{"clean", cleanPath, resilience.ReplayExitClean},
		{"unusable-no-input", emptyPath, resilience.ReplayExitUnusable},
		{"unusable-missing-file", filepath.Join(dir, "nope.json"), resilience.ReplayExitUnusable},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			_, errOut, err := runTool(t, tools["hls-adaptor"], "", "-replay", row.path)
			if code := exitCode(err); code != row.want {
				t.Fatalf("replay %s: exit = %d, want %d\n%s", row.path, code, row.want, errOut)
			}
		})
	}
}

// TestHLSReduceCLIMLIRModeTrailingFlags pins the documented CLI spelling
// with the input file FIRST and predicate flags after it: the flag
// package stops at the first positional argument, so without the
// re-parse in hls-reduce the trailing flags were silently dropped and
// the injection never armed.
func TestHLSReduceCLIMLIRModeTrailingFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test in short mode")
	}
	tools := buildTools(t, "hls-reduce")
	out := filepath.Join(t.TempDir(), "min.mlir")
	_, errOut, err := runTool(t, tools["hls-reduce"], "",
		"internal/kgen/corpus/k1.mlir",
		"-kind", "miscompile",
		"-inject-miscompile", "mlir-opt/canonicalize",
		"-o", out)
	if code := exitCode(err); code != 0 {
		t.Fatalf("hls-reduce exit = %d, want 0 (trailing flags dropped?)\n%s", code, errOut)
	}
	so, err := reduce.Measure(kgen.Generate(1, kgen.Config{}).MLIR)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := reduce.Measure(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Ops >= so.Ops {
		t.Fatalf("reduction did not shrink ops: %d -> %d", so.Ops, sr.Ops)
	}
}

// TestHLSReduceCLIBundleMode drives the hls-reduce binary on a real
// bundle and checks the reduced artifact lands with the -reduced marker.
func TestHLSReduceCLIBundleMode(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test in short mode")
	}
	tools := buildTools(t, "hls-reduce")
	dir := t.TempDir()
	k := kgen.Generate(3, kgen.Config{})
	opts := flow.Options{InjectMiscompile: "mlir-opt/canonicalize", VerifySemantics: true}
	_, ferr := flow.AdaptorFlowWith(k.Build(), k.Name, k.Directives, hls.DefaultTarget(), opts)
	b := flow.Bisect(k.Build, "adaptor", k.Name, k.Name, k.Directives, hls.DefaultTarget(), opts, ferr)
	path, err := resilience.WriteBundle(dir, b)
	if err != nil {
		t.Fatal(err)
	}

	stdout, errOut, err := runTool(t, tools["hls-reduce"], "", "-bundle", path)
	if code := exitCode(err); code != 0 {
		t.Fatalf("hls-reduce exit = %d\n%s", code, errOut)
	}
	written := strings.TrimSpace(stdout)
	if !strings.HasSuffix(written, "-reduced.json") {
		t.Fatalf("output path lacks -reduced marker: %q", written)
	}
	nb, err := resilience.ReadBundle(written)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Reduced == nil || nb.Reduced.FromID != b.ID() {
		t.Fatalf("provenance missing: %+v", nb.Reduced)
	}
}
